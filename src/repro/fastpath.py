"""Runtime toggles for the simulator's optimised hot paths.

The event kernel carries two layers of optimisation, both bit-identical
to the straightforward implementations but measurably faster:

- **fast paths** (``REPRO_FAST``, default on): an inlined run loop and a
  :class:`~repro.sim.core.Timeout` free-list;
- **batched dispatch** (``REPRO_BATCH``, default on, only active when
  the fast paths are too): same-timestamp events are drained as one
  batch with the loop's head checks hoisted to the tick boundary, and
  fire-and-forget deliveries scheduled through
  :meth:`~repro.sim.core.Environment.defer` skip event-object
  allocation entirely.

Either layer can be disabled for A/B verification with its environment
variable (``REPRO_FAST=0`` / ``REPRO_BATCH=0``) or, in-process, with
:func:`set_enabled` / :func:`set_batched`.

Determinism contract: every simulation result — goldens, serial/parallel
fingerprints, metric counters — must be identical under every flag
combination.  ``tests/test_perf_fastpath.py`` enforces this by running
the same experiment under the flags and comparing fingerprints.

The flags are captured by :class:`~repro.sim.core.Environment` at
construction, so flipping them never affects a simulation that is
already running.
"""

from __future__ import annotations

import os

_FALSE_VALUES = ("0", "false", "no", "off")

#: Whether new environments use the optimised kernel paths.  Read once
#: per Environment construction; seed it from ``REPRO_FAST`` (default on).
ENABLED: bool = (
    os.environ.get("REPRO_FAST", "1").strip().lower() not in _FALSE_VALUES
)

#: Whether new environments use the batched same-tick dispatch loop and
#: zero-allocation deferred deliveries.  Layered on top of the fast
#: paths: it only takes effect when :data:`ENABLED` is also true.
BATCHED: bool = (
    os.environ.get("REPRO_BATCH", "1").strip().lower() not in _FALSE_VALUES
)


def set_enabled(value: bool) -> bool:
    """Set the fast-path flag in-process; returns the previous value.

    Only environments constructed *after* the call observe the change —
    the flag is captured at :class:`~repro.sim.core.Environment`
    construction time.  Intended for the determinism regression tests;
    production configuration goes through ``REPRO_FAST``.
    """
    global ENABLED
    previous = ENABLED
    ENABLED = bool(value)
    return previous


def set_batched(value: bool) -> bool:
    """Set the batched-dispatch flag in-process; returns the previous value.

    Like :func:`set_enabled`, the flag is captured at
    :class:`~repro.sim.core.Environment` construction time; already
    running simulations are unaffected.
    """
    global BATCHED
    previous = BATCHED
    BATCHED = bool(value)
    return previous
