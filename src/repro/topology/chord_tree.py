"""Deriving an index search tree from Chord lookup routes.

For a fixed key, every node's Chord lookup route is determined by the
*next-hop* function, which depends only on the current node and the key.
Following next hops therefore induces a functional graph whose sinks all
reach the key's owner — i.e. a tree rooted at the authority node.  This is
exactly the paper's "index search tree" for structured overlays.

The resulting trees are used as an alternative topology source for the
experiments (`topology="chord"`), validating that DUP's advantage does not
depend on the synthetic uniform-child-count generator.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import TopologyError
from repro.topology.chord import ChordRing
from repro.topology.tree import SearchTree


def chord_search_tree(ring: ChordRing, key: int) -> SearchTree:
    """Build the index search tree for ``key`` over a Chord ring.

    Parameters
    ----------
    ring:
        The Chord overlay.
    key:
        Any identifier; its owner (``ring.successor(key)``) becomes the
        tree root / authority node.

    Returns
    -------
    SearchTree
        Tree over the ring's node ids whose edges are next-hop pointers
        toward the authority node.
    """
    root = ring.successor(key)
    tree = SearchTree(root=root)
    pending = [node for node in ring.node_ids if node != root]
    # Insert nodes in path order: walk each node's route and attach any
    # not-yet-present prefix from the tree boundary downward.
    for node in pending:
        if node in tree:
            continue
        path = ring.lookup_path(node, key)
        # Find the first node of the path already in the tree; everything
        # before it must be attached (in reverse, parent before child).
        boundary = next(
            index for index, hop in enumerate(path) if hop in tree
        )
        for index in range(boundary - 1, -1, -1):
            tree.add_leaf(path[index + 1], path[index])
    if len(tree) != len(ring):
        raise TopologyError(  # pragma: no cover - defensive
            "chord tree does not span the ring"
        )
    return tree


class LazyChordTree:
    """The search tree of a key, materialized one parent at a time.

    :func:`chord_search_tree` walks every node's full lookup route up
    front — O(n log n) work and an n-entry dict *per key*, which at
    10^5 nodes x 10^3 keys is minutes of setup and hundreds of MB for
    edges that mostly never carry a message.  This view computes the
    identical tree lazily: ``parent(node)`` is ``ring.next_hop(node,
    key)`` (the defining edge relation of the eager builder), memoized
    on first use, so setup is O(1) and total work is proportional to
    the nodes the workload actually touches.

    The tree is static (the scale tier runs without churn), so the memo
    never invalidates.  Only the read interface the query/dissemination
    path needs is provided — mutators live on :class:`SearchTree`.
    """

    __slots__ = ("_ring", "_key", "_root", "_parent", "_depth")

    def __init__(self, ring: ChordRing, key: int):
        self._ring = ring
        self._key = key
        self._root = ring.successor(key)
        self._parent: dict[int, Optional[int]] = {self._root: None}
        self._depth: dict[int, int] = {self._root: 0}

    @property
    def root(self) -> int:
        """The authority node: owner of the key on the ring."""
        return self._root

    @property
    def key(self) -> int:
        """The key whose search tree this is."""
        return self._key

    def __contains__(self, node: int) -> bool:
        return node in self._ring

    def __len__(self) -> int:
        return len(self._ring)

    def parent(self, node: int) -> Optional[int]:
        """Next hop toward the authority (``None`` at the root)."""
        memo = self._parent
        try:
            return memo[node]
        except KeyError:
            pass
        hop = self._ring.next_hop(node, self._key)
        memo[node] = hop
        return hop

    def depth(self, node: int) -> int:
        """Hops from ``node`` to the root along next-hop pointers."""
        memo = self._depth
        trail = []
        current = node
        while current not in memo:
            trail.append(current)
            current = self.parent(current)
        depth = memo[current]
        for hop in reversed(trail):
            depth += 1
            memo[hop] = depth
        return memo[node]

    def path_to_root(self, node: int) -> list[int]:
        """Nodes from ``node`` (inclusive) up to the root (inclusive)."""
        path = [node]
        parent = self.parent(node)
        while parent is not None:
            path.append(parent)
            parent = self.parent(parent)
        return path

    @property
    def touched(self) -> int:
        """Nodes whose parent pointer has been materialized so far."""
        return len(self._parent)

    def materialize(self) -> SearchTree:
        """The full eager tree (tests compare it edge-for-edge)."""
        return chord_search_tree(self._ring, self._key)

    def __repr__(self) -> str:
        return (
            f"LazyChordTree(key={self._key}, root={self._root}, "
            f"touched={len(self._parent)}/{len(self._ring)})"
        )
