"""Deriving an index search tree from Chord lookup routes.

For a fixed key, every node's Chord lookup route is determined by the
*next-hop* function, which depends only on the current node and the key.
Following next hops therefore induces a functional graph whose sinks all
reach the key's owner — i.e. a tree rooted at the authority node.  This is
exactly the paper's "index search tree" for structured overlays.

The resulting trees are used as an alternative topology source for the
experiments (`topology="chord"`), validating that DUP's advantage does not
depend on the synthetic uniform-child-count generator.
"""

from __future__ import annotations

from repro.errors import TopologyError
from repro.topology.chord import ChordRing
from repro.topology.tree import SearchTree


def chord_search_tree(ring: ChordRing, key: int) -> SearchTree:
    """Build the index search tree for ``key`` over a Chord ring.

    Parameters
    ----------
    ring:
        The Chord overlay.
    key:
        Any identifier; its owner (``ring.successor(key)``) becomes the
        tree root / authority node.

    Returns
    -------
    SearchTree
        Tree over the ring's node ids whose edges are next-hop pointers
        toward the authority node.
    """
    root = ring.successor(key)
    tree = SearchTree(root=root)
    pending = [node for node in ring.node_ids if node != root]
    # Insert nodes in path order: walk each node's route and attach any
    # not-yet-present prefix from the tree boundary downward.
    for node in pending:
        if node in tree:
            continue
        path = ring.lookup_path(node, key)
        # Find the first node of the path already in the tree; everything
        # before it must be attached (in reverse, parent before child).
        boundary = next(
            index for index, hop in enumerate(path) if hop in tree
        )
        for index in range(boundary - 1, -1, -1):
            tree.add_leaf(path[index + 1], path[index])
    if len(tree) != len(ring):
        raise TopologyError(  # pragma: no cover - defensive
            "chord tree does not span the ring"
        )
    return tree
