"""A Content-Addressable Network (Ratnasamy et al., SIGCOMM 2001).

CAN is the paper's other canonical structured overlay (reference [2];
"distributed approaches such as CAN and Chord have been proposed").  The
coordinate space is the d-dimensional unit torus-less cube ``[0, 1)^d``
partitioned into axis-aligned *zones*, one per node.  A key hashes to a
point; the node owning the containing zone is the key's authority.
Routing is greedy: each hop forwards to the neighbor zone closest to the
target point, guaranteeing progress because some neighbor always lies
strictly nearer along the straight line to the target.

Construction follows CAN's join procedure: each arriving node picks a
random point, routes to the zone containing it, and splits that zone in
half along the dimension in which it is largest (ties broken by the
lowest axis), taking one half.

:func:`can_search_tree` derives the per-key index search tree exactly as
for Chord: the next-hop function is deterministic per (node, key), so
following it induces a tree rooted at the key's owner.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Iterator, Optional

import numpy as np

from repro.errors import NodeNotFoundError, TopologyError
from repro.topology.tree import SearchTree

NodeId = int


def can_hash_point(label: str, dimensions: int) -> tuple[float, ...]:
    """Deterministically hash a label to a point in ``[0, 1)^d``."""
    coordinates = []
    for axis in range(dimensions):
        digest = hashlib.sha1(f"{label}#{axis}".encode()).digest()
        value = int.from_bytes(digest[:8], "big") / 2**64
        coordinates.append(value)
    return tuple(coordinates)


@dataclass(frozen=True)
class Zone:
    """An axis-aligned box ``[low_i, high_i)`` per dimension."""

    lows: tuple[float, ...]
    highs: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.lows) != len(self.highs):
            raise TopologyError("dimension mismatch in zone bounds")
        for low, high in zip(self.lows, self.highs):
            if not low < high:
                raise TopologyError(f"degenerate zone bound [{low}, {high})")

    @property
    def dimensions(self) -> int:
        """Number of coordinate-space dimensions."""
        return len(self.lows)

    def contains(self, point: tuple[float, ...]) -> bool:
        """Whether ``point`` lies inside the half-open box."""
        return all(
            low <= coordinate < high
            for coordinate, low, high in zip(point, self.lows, self.highs)
        )

    def center(self) -> tuple[float, ...]:
        """The box's center point."""
        return tuple(
            (low + high) / 2 for low, high in zip(self.lows, self.highs)
        )

    def distance_to(self, point: tuple[float, ...]) -> float:
        """Euclidean distance from ``point`` to the box (0 if inside)."""
        total = 0.0
        for coordinate, low, high in zip(point, self.lows, self.highs):
            if coordinate < low:
                total += (low - coordinate) ** 2
            elif coordinate >= high:
                total += (coordinate - high) ** 2
        return total**0.5

    def split(self) -> tuple["Zone", "Zone"]:
        """Halve along the largest dimension (lowest axis on ties)."""
        spans = [high - low for low, high in zip(self.lows, self.highs)]
        axis = max(range(len(spans)), key=lambda i: (spans[i], -i))
        middle = (self.lows[axis] + self.highs[axis]) / 2
        left_highs = list(self.highs)
        left_highs[axis] = middle
        right_lows = list(self.lows)
        right_lows[axis] = middle
        return (
            Zone(self.lows, tuple(left_highs)),
            Zone(tuple(right_lows), self.highs),
        )

    def abuts(self, other: "Zone") -> bool:
        """Whether the zones share a (d-1)-dimensional face."""
        touching_axis = None
        for axis in range(self.dimensions):
            if (
                self.highs[axis] == other.lows[axis]
                or other.highs[axis] == self.lows[axis]
            ):
                overlap_elsewhere = all(
                    self.lows[i] < other.highs[i]
                    and other.lows[i] < self.highs[i]
                    for i in range(self.dimensions)
                    if i != axis
                )
                if overlap_elsewhere:
                    if touching_axis is not None:
                        return False  # corner contact only
                    touching_axis = axis
            elif not (
                self.lows[axis] < other.highs[axis]
                and other.lows[axis] < self.highs[axis]
            ):
                return False  # separated along this axis
        return touching_axis is not None


class CanOverlay:
    """A static CAN: zones, neighbors, and greedy point routing."""

    def __init__(self, dimensions: int = 2):
        if dimensions < 1:
            raise TopologyError(f"need >= 1 dimension, got {dimensions}")
        self._dimensions = dimensions
        self._zones: dict[NodeId, Zone] = {}
        self._neighbors: dict[NodeId, set[NodeId]] = {}

    # -- construction ------------------------------------------------------
    @classmethod
    def random(
        cls, n: int, rng: np.random.Generator, dimensions: int = 2
    ) -> "CanOverlay":
        """Build an ``n``-node CAN by the standard join procedure."""
        if n < 1:
            raise TopologyError(f"need at least one node, got n={n}")
        overlay = cls(dimensions)
        whole = Zone((0.0,) * dimensions, (1.0,) * dimensions)
        overlay._install(0, whole)
        for node in range(1, n):
            point = tuple(rng.random(dimensions))
            victim = overlay.owner_of(point)
            overlay._join_split(victim, node)
        return overlay

    def _install(self, node: NodeId, zone: Zone) -> None:
        self._zones[node] = zone
        self._neighbors[node] = set()
        for other, other_zone in self._zones.items():
            if other != node and zone.abuts(other_zone):
                self._neighbors[node].add(other)
                self._neighbors[other].add(node)

    def _join_split(self, victim: NodeId, joiner: NodeId) -> None:
        old_zone = self._zones[victim]
        kept, given = old_zone.split()
        # Re-wire the victim with its shrunken zone, then install the
        # joiner; recomputing adjacency against all zones keeps this
        # simple (construction-time cost only).
        old_neighbors = self._neighbors.pop(victim)
        for other in old_neighbors:
            self._neighbors[other].discard(victim)
        del self._zones[victim]
        self._install(victim, kept)
        self._install(joiner, given)

    # -- queries -----------------------------------------------------------
    @property
    def dimensions(self) -> int:
        """Coordinate-space dimensionality."""
        return self._dimensions

    @property
    def node_ids(self) -> tuple[NodeId, ...]:
        """All node ids, ascending."""
        return tuple(sorted(self._zones))

    def __len__(self) -> int:
        return len(self._zones)

    def __contains__(self, node: NodeId) -> bool:
        return node in self._zones

    def __iter__(self) -> Iterator[NodeId]:
        return iter(sorted(self._zones))

    def zone(self, node: NodeId) -> Zone:
        """The zone owned by ``node``."""
        self._require(node)
        return self._zones[node]

    def neighbors(self, node: NodeId) -> tuple[NodeId, ...]:
        """Nodes whose zones share a face with ``node``'s."""
        self._require(node)
        return tuple(sorted(self._neighbors[node]))

    def owner_of(self, point: tuple[float, ...]) -> NodeId:
        """The node whose zone contains ``point``."""
        for node, zone in self._zones.items():
            if zone.contains(point):
                return node
        raise TopologyError(f"no zone contains {point}")  # pragma: no cover

    def key_point(self, key: str | int) -> tuple[float, ...]:
        """Hash a key to its coordinate-space point."""
        return can_hash_point(str(key), self._dimensions)

    # -- routing ---------------------------------------------------------------
    def next_hop(
        self, node: NodeId, point: tuple[float, ...]
    ) -> Optional[NodeId]:
        """The greedy next hop from ``node`` toward ``point``.

        ``None`` when ``node`` already owns the point.  Among neighbors,
        picks the zone nearest to the point (strictly nearer than the
        current zone — CAN's progress guarantee), tie-broken by id.
        """
        self._require(node)
        current = self._zones[node]
        if current.contains(point):
            return None
        here = current.distance_to(point)
        best: Optional[NodeId] = None
        best_distance = here
        for neighbor in sorted(self._neighbors[node]):
            distance = self._zones[neighbor].distance_to(point)
            if distance < best_distance or (
                best is None and distance == best_distance
            ):
                best = neighbor
                best_distance = distance
        if best is None:  # pragma: no cover - cannot happen on a valid CAN
            raise TopologyError(f"routing stuck at node {node}")
        return best

    def route(self, start: NodeId, point: tuple[float, ...]) -> list[NodeId]:
        """The full greedy route from ``start`` to the point's owner."""
        self._require(start)
        path = [start]
        current = start
        for _ in range(len(self._zones) + 1):
            hop = self.next_hop(current, point)
            if hop is None:
                return path
            path.append(hop)
            current = hop
        raise TopologyError(  # pragma: no cover - defensive
            f"route to {point} did not converge"
        )

    def validate(self) -> None:
        """Check the partition invariants (volumes sum to 1, no overlap)."""
        volume = 0.0
        zones = list(self._zones.values())
        for zone in zones:
            product = 1.0
            for low, high in zip(zone.lows, zone.highs):
                product *= high - low
            volume += product
        if abs(volume - 1.0) > 1e-9:
            raise TopologyError(f"zone volumes sum to {volume}, not 1")
        for node, zone in self._zones.items():
            for neighbor in self._neighbors[node]:
                if not zone.abuts(self._zones[neighbor]):
                    raise TopologyError(
                        f"stale neighbor link {node} <-> {neighbor}"
                    )

    def _require(self, node: NodeId) -> None:
        if node not in self._zones:
            raise NodeNotFoundError(f"node {node} not in the CAN")

    def __repr__(self) -> str:
        return f"CanOverlay(nodes={len(self._zones)}, d={self._dimensions})"


def can_search_tree(overlay: CanOverlay, key: str | int) -> SearchTree:
    """The index search tree for ``key`` over a CAN overlay.

    As with Chord, the deterministic next-hop function induces a tree
    rooted at the key's owner (the authority node).
    """
    point = overlay.key_point(key)
    root = overlay.owner_of(point)
    tree = SearchTree(root=root)
    for node in overlay.node_ids:
        if node in tree:
            continue
        path = overlay.route(node, point)
        boundary = next(
            index for index, hop in enumerate(path) if hop in tree
        )
        for index in range(boundary - 1, -1, -1):
            tree.add_leaf(path[index + 1], path[index])
    if len(tree) != len(overlay):
        raise TopologyError(  # pragma: no cover - defensive
            "CAN tree does not span the overlay"
        )
    return tree
