"""Index search tree generators.

:func:`random_search_tree` is the paper's generator: "The maximum degree of
the index search tree is D.  The number of children for each node is
uniformly selected from [1, D]."  Nodes are laid out breadth-first from the
root until the target population is reached, so every node except the last
frontier receives its drawn child count.

The regular generators (balanced / chain / star) exist for tests and for
analytical sanity checks (e.g. a chain maximizes depth, a star minimizes
it).
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.errors import TopologyError
from repro.topology.tree import SearchTree


def random_search_tree(
    n: int, max_degree: int, rng: np.random.Generator
) -> SearchTree:
    """Generate the paper's random index search tree.

    Parameters
    ----------
    n:
        Total number of nodes (including the root / authority node).
    max_degree:
        Maximum number of children per node (paper's ``D``); each node's
        child count is drawn uniformly from ``[1, max_degree]``.
    rng:
        Source of randomness (typically the ``"topology"`` stream).

    Returns
    -------
    SearchTree
        A tree with node ids ``0..n-1``; node ``0`` is the root.
    """
    if n < 1:
        raise TopologyError(f"need at least one node, got n={n}")
    if max_degree < 1:
        raise TopologyError(f"max_degree must be >= 1, got {max_degree}")
    tree = SearchTree(root=0)
    next_id = 1
    frontier: deque[int] = deque([0])
    while next_id < n:
        parent = frontier.popleft()
        child_count = int(rng.integers(1, max_degree + 1))
        for _ in range(child_count):
            if next_id >= n:
                break
            tree.add_leaf(parent, next_id)
            frontier.append(next_id)
            next_id += 1
    return tree


def complete_tree(n: int, degree: int) -> SearchTree:
    """A breadth-first complete ``degree``-ary tree with exactly ``n`` nodes."""
    if n < 1:
        raise TopologyError(f"need at least one node, got n={n}")
    if degree < 1:
        raise TopologyError(f"degree must be >= 1, got {degree}")
    tree = SearchTree(root=0)
    next_id = 1
    frontier: deque[int] = deque([0])
    while next_id < n:
        parent = frontier.popleft()
        for _ in range(degree):
            if next_id >= n:
                break
            tree.add_leaf(parent, next_id)
            frontier.append(next_id)
            next_id += 1
    return tree


def balanced_tree(depth: int, degree: int) -> SearchTree:
    """A complete ``degree``-ary tree of the given depth (root depth 0)."""
    if depth < 0:
        raise TopologyError(f"depth must be >= 0, got {depth}")
    if degree < 1:
        raise TopologyError(f"degree must be >= 1, got {degree}")
    tree = SearchTree(root=0)
    next_id = 1
    frontier = [0]
    for _ in range(depth):
        new_frontier = []
        for parent in frontier:
            for _ in range(degree):
                tree.add_leaf(parent, next_id)
                new_frontier.append(next_id)
                next_id += 1
        frontier = new_frontier
    return tree


def chain_tree(n: int) -> SearchTree:
    """A path of ``n`` nodes: worst-case depth (the PCX-unfriendly case)."""
    if n < 1:
        raise TopologyError(f"need at least one node, got n={n}")
    tree = SearchTree(root=0)
    for node in range(1, n):
        tree.add_leaf(node - 1, node)
    return tree


def star_tree(n: int) -> SearchTree:
    """A root with ``n - 1`` direct children: best-case depth."""
    if n < 1:
        raise TopologyError(f"need at least one node, got n={n}")
    tree = SearchTree(root=0)
    for node in range(1, n):
        tree.add_leaf(0, node)
    return tree
