"""A Chord distributed hash table (Stoica et al., SIGCOMM 2001).

The paper targets *structured* peer-to-peer networks and cites Chord as the
canonical example: queries for a key are routed along well-defined paths to
the key's authority node, and those paths form the index search tree.  This
module implements a complete static Chord ring — identifier circle, finger
tables, successor lists, and greedy lookup — from which
:func:`repro.topology.chord_tree.chord_search_tree` derives per-key search
trees.

Identifiers live on a ``2**m`` circle.  A key ``k`` is owned by
``successor(k)``: the first node clockwise from ``k``.  Lookups hop via the
*closest preceding finger*, halving the remaining distance each step, so
paths have O(log n) hops.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Iterable, Iterator, Optional

import numpy as np

from repro.errors import NodeNotFoundError, TopologyError


def chord_hash(label: str, bits: int) -> int:
    """Deterministic ``bits``-bit hash of a string label (SHA-1 based)."""
    digest = hashlib.sha1(label.encode("utf-8")).digest()
    return int.from_bytes(digest, "big") % (1 << bits)


def _in_interval(value: int, low: int, high: int, modulus: int) -> bool:
    """Whether ``value`` is in the circular interval ``(low, high]``."""
    low %= modulus
    high %= modulus
    value %= modulus
    if low < high:
        return low < value <= high
    if low > high:
        return value > low or value <= high
    # low == high: the interval covers the whole circle.
    return True


class ChordRing:
    """A static Chord identifier circle with finger tables.

    Parameters
    ----------
    node_ids:
        Distinct identifiers in ``[0, 2**bits)``; one per participating
        node.
    bits:
        Size of the identifier space (``m`` in the Chord paper).
    """

    def __init__(self, node_ids: Iterable[int], bits: int = 32):
        if bits < 1:
            raise TopologyError(f"bits must be >= 1, got {bits}")
        self._bits = bits
        self._modulus = 1 << bits
        ids = sorted(set(int(i) for i in node_ids))
        if not ids:
            raise TopologyError("a Chord ring needs at least one node")
        if ids[0] < 0 or ids[-1] >= self._modulus:
            raise TopologyError(
                f"node ids must lie in [0, 2**{bits}); got range "
                f"[{ids[0]}, {ids[-1]}]"
            )
        self._ids = ids
        self._ids_np = np.asarray(ids, dtype=np.int64)
        # Finger matrix: row i is node ids[i]'s finger table, built in one
        # vectorized searchsorted over all n*bits targets instead of
        # n*bits bisect calls (the construction bottleneck at 10^5
        # nodes).  searchsorted-left is exactly bisect_left, and the
        # ``% n`` wraps an off-the-end index to ids[0] — successor().
        if bits <= 62:
            shifts = np.left_shift(
                np.int64(1), np.arange(bits, dtype=np.int64)
            )
            targets = (self._ids_np[:, None] + shifts[None, :]) % self._modulus
            rows = np.searchsorted(self._ids_np, targets, side="left")
            self._finger_np = self._ids_np[rows % len(ids)]
        else:  # pragma: no cover - identifier spaces beyond int64
            self._finger_np = np.array(
                [
                    [
                        self.successor((node + (1 << k)) % self._modulus)
                        for k in range(bits)
                    ]
                    for node in ids
                ],
                dtype=object,
            )
        # Per-node Python rows materialize lazily on first routing use:
        # most rings route through a small working set of nodes, and the
        # matrix alone answers bulk queries.
        self._fingers: dict[int, list[int]] = {}

    # -- constructors ----------------------------------------------------
    @classmethod
    def random(
        cls, n: int, rng: np.random.Generator, bits: int = 32
    ) -> "ChordRing":
        """A ring of ``n`` nodes with distinct uniform-random identifiers."""
        if n < 1:
            raise TopologyError(f"need at least one node, got n={n}")
        if n > (1 << bits):
            raise TopologyError(
                f"cannot place {n} distinct ids in a {bits}-bit space"
            )
        chosen: set[int] = set()
        while len(chosen) < n:
            needed = n - len(chosen)
            draws = rng.integers(0, 1 << bits, size=needed * 2, dtype=np.int64)
            for draw in draws:
                chosen.add(int(draw))
                if len(chosen) == n:
                    break
        return cls(chosen, bits=bits)

    @classmethod
    def from_labels(
        cls, labels: Iterable[str], bits: int = 32
    ) -> "ChordRing":
        """A ring whose node ids are SHA-1 hashes of string labels."""
        ids = {chord_hash(label, bits) for label in labels}
        return cls(ids, bits=bits)

    # -- basic queries ---------------------------------------------------
    @property
    def bits(self) -> int:
        """Identifier-space size in bits."""
        return self._bits

    @property
    def node_ids(self) -> tuple[int, ...]:
        """All node identifiers, ascending."""
        return tuple(self._ids)

    def __len__(self) -> int:
        return len(self._ids)

    def __contains__(self, node: int) -> bool:
        index = bisect.bisect_left(self._ids, node)
        return index < len(self._ids) and self._ids[index] == node

    def __iter__(self) -> Iterator[int]:
        return iter(self._ids)

    def successor(self, key: int) -> int:
        """The node owning ``key``: first node clockwise from ``key``."""
        key %= self._modulus
        index = bisect.bisect_left(self._ids, key)
        if index == len(self._ids):
            return self._ids[0]
        return self._ids[index]

    def predecessor(self, node: int) -> int:
        """The node immediately counter-clockwise from ``node``."""
        self._require(node)
        index = bisect.bisect_left(self._ids, node)
        return self._ids[index - 1] if index > 0 else self._ids[-1]

    def finger_table(self, node: int) -> tuple[int, ...]:
        """``node``'s finger table: entry k is successor(node + 2**k)."""
        self._require(node)
        return tuple(self._finger_row(node))

    def _finger_row(self, node: int) -> list[int]:
        """``node``'s finger table as a cached plain-int list."""
        row = self._fingers.get(node)
        if row is None:
            index = bisect.bisect_left(self._ids, node)
            row = [int(f) for f in self._finger_np[index]]
            self._fingers[node] = row
        return row

    # -- routing -----------------------------------------------------------
    def closest_preceding_finger(self, node: int, key: int) -> int:
        """The finger of ``node`` closest to (but preceding) ``key``."""
        self._require(node)
        for finger in reversed(self._finger_row(node)):
            if finger != node and _in_interval(
                finger, node, key - 1, self._modulus
            ):
                return finger
        return node

    def next_hop(self, node: int, key: int) -> Optional[int]:
        """Next node on the lookup route from ``node`` toward ``key``.

        Returns ``None`` when ``node`` already owns ``key``.
        """
        self._require(node)
        owner = self.successor(key)
        if node == owner:
            return None
        successor = self._finger_row(node)[0]
        if _in_interval(key, node, successor, self._modulus):
            return successor
        finger = self.closest_preceding_finger(node, key)
        if finger == node:
            # No strictly closer finger: fall through to the successor.
            return successor
        return finger

    def lookup_path(self, start: int, key: int) -> list[int]:
        """The full lookup route from ``start`` to the owner of ``key``.

        The returned list starts with ``start`` and ends with the owner.
        """
        self._require(start)
        path = [start]
        current = start
        for _ in range(len(self._ids) + 1):
            hop = self.next_hop(current, key)
            if hop is None:
                return path
            path.append(hop)
            current = hop
        raise TopologyError(  # pragma: no cover - defensive
            f"lookup for key {key} from {start} did not converge"
        )

    def path_length(self, start: int, key: int) -> int:
        """Number of hops on the lookup route from ``start`` to the owner."""
        return len(self.lookup_path(start, key)) - 1

    def _require(self, node: int) -> None:
        if node not in self:
            raise NodeNotFoundError(f"node {node} not on the ring")

    def __repr__(self) -> str:
        return f"ChordRing(nodes={len(self._ids)}, bits={self._bits})"
