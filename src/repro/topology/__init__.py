"""Overlay topologies: index search trees and the Chord DHT substrate.

The paper's simulations use a randomly generated *index search tree* whose
per-node child count is uniform on ``[1, D]`` (``D`` = maximum node degree).
We implement that generator plus a full Chord ring from which per-key search
trees can be derived (the union of all nodes' lookup paths toward a key's
authority node forms a tree, as the paper notes for structured overlays).
"""

from repro.topology.tree import SearchTree
from repro.topology.generators import (
    balanced_tree,
    chain_tree,
    random_search_tree,
    star_tree,
)
from repro.topology.can import CanOverlay, can_search_tree
from repro.topology.chord import ChordRing
from repro.topology.chord_tree import chord_search_tree

__all__ = [
    "CanOverlay",
    "ChordRing",
    "SearchTree",
    "balanced_tree",
    "chain_tree",
    "can_search_tree",
    "chord_search_tree",
    "random_search_tree",
    "star_tree",
]
