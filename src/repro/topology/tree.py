"""The index search tree: a rooted tree over node ids, mutable under churn.

In a structured peer-to-peer network every query for a key is routed along
a well-defined path toward the key's *authority node*; the union of those
paths forms the per-key index search tree (paper, Section I).  Queries
travel **up** this tree (toward the root), replies travel back down.

The tree is mutable because nodes join, leave, and fail (paper, Section
III-C):

- :meth:`insert_on_edge` — a joining node takes over part of a neighbor's
  key space and lands between two existing tree nodes.
- :meth:`add_leaf` — a joining node lands outside any existing path.
- :meth:`splice_out` — a leaving/failed interior node is removed and its
  children re-parent to its parent (a neighbor "acts as" the departed
  node).
- :meth:`remove_leaf` — a leaving/failed edge node simply disappears.

All operations maintain the parent/children maps consistently;
:meth:`validate` checks the invariants and is exercised heavily by the
property-based tests.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional

import networkx as nx

from repro.errors import NodeNotFoundError, TopologyError

NodeId = int


class SearchTree:
    """A rooted tree with O(1) parent/children access and dynamic updates."""

    def __init__(self, root: NodeId):
        self._root = root
        self._parent: dict[NodeId, Optional[NodeId]] = {root: None}
        self._children: dict[NodeId, list[NodeId]] = {root: []}
        self._version = 0
        # node -> tuple path (node .. root), filled lazily by _path() and
        # cleared by _mutated() on every structural change.
        self._paths: dict[NodeId, tuple[NodeId, ...]] = {}

    def _mutated(self) -> None:
        """Bump the structure version and drop every memoised path."""
        self._version += 1
        if self._paths:
            self._paths.clear()

    @property
    def version(self) -> int:
        """Structure version: bumped by every mutating operation.

        Route caches outside the tree key their own memoisation on this
        counter to invalidate on churn, promotion, and renames.
        """
        return self._version

    def _path(self, node: NodeId) -> tuple[NodeId, ...]:
        """Memoised path ``node .. root`` (cached ancestor suffixes reused)."""
        path = self._paths.get(node)
        if path is None:
            self._require(node)
            parts = [node]
            current = self._parent[node]
            while current is not None:
                cached = self._paths.get(current)
                if cached is not None:
                    parts.extend(cached)
                    break
                parts.append(current)
                current = self._parent[current]
            path = tuple(parts)
            self._paths[node] = path
        return path

    # -- construction -----------------------------------------------------
    def add_leaf(self, parent: NodeId, node: NodeId) -> None:
        """Attach ``node`` as a new child of ``parent``."""
        self._require(parent)
        if node in self._parent:
            raise TopologyError(f"node {node} already in tree")
        self._parent[node] = parent
        self._children[node] = []
        self._children[parent].append(node)
        self._mutated()

    def insert_on_edge(
        self, upper: NodeId, lower: NodeId, node: NodeId
    ) -> None:
        """Insert ``node`` between ``upper`` (parent) and ``lower`` (child).

        Models a join where the new node takes over part of ``upper``'s key
        responsibility on the path toward ``lower`` (paper example: N3'
        inserted between N3 and N5).
        """
        self._require(upper)
        self._require(lower)
        if node in self._parent:
            raise TopologyError(f"node {node} already in tree")
        if self._parent[lower] != upper:
            raise TopologyError(
                f"({upper}, {lower}) is not an edge of the tree"
            )
        siblings = self._children[upper]
        siblings[siblings.index(lower)] = node
        self._parent[node] = upper
        self._children[node] = [lower]
        self._parent[lower] = node
        self._mutated()

    def remove_leaf(self, node: NodeId) -> None:
        """Remove a leaf node (fails if it has children or is the root)."""
        self._require(node)
        if node == self._root:
            raise TopologyError("cannot remove the root")
        if self._children[node]:
            raise TopologyError(f"node {node} is not a leaf")
        parent = self._parent[node]
        self._children[parent].remove(node)
        del self._parent[node]
        del self._children[node]
        self._mutated()

    def splice_out(self, node: NodeId) -> NodeId:
        """Remove an interior node; its children re-parent to its parent.

        Returns the parent that absorbed the children.  Models a departure
        or failure where a neighboring node takes over the departed node's
        key space and hence its position on every search path.
        """
        self._require(node)
        if node == self._root:
            raise TopologyError(
                "cannot splice out the root; use replace_root instead"
            )
        parent = self._parent[node]
        siblings = self._children[parent]
        index = siblings.index(node)
        orphans = self._children[node]
        siblings[index : index + 1] = orphans
        for orphan in orphans:
            self._parent[orphan] = parent
        del self._parent[node]
        del self._children[node]
        self._mutated()
        return parent

    def replace_root(self, new_root: NodeId) -> None:
        """Replace a failed root with a fresh node (paper failure case 5).

        The new node inherits all of the old root's children.
        """
        if new_root in self._parent:
            raise TopologyError(f"node {new_root} already in tree")
        old_root = self._root
        children = self._children.pop(old_root)
        del self._parent[old_root]
        self._root = new_root
        self._parent[new_root] = None
        self._children[new_root] = children
        for child in children:
            self._parent[child] = new_root
        self._mutated()

    def promote_to_root(self, node: NodeId) -> NodeId:
        """An existing node takes over the failed root's position.

        The standby-failover variant of :meth:`replace_root`: ``node`` is
        first spliced out of its current position (its children re-parent
        to its old parent) and then installed as the root, inheriting the
        old root's children.  Returns the parent that absorbed ``node``'s
        children (the old root itself when ``node`` was its direct child,
        in which case those children transfer to the promoted node).
        """
        self._require(node)
        if node == self._root:
            raise TopologyError(f"node {node} is already the root")
        absorber = self.splice_out(node)
        self.replace_root(node)
        return absorber

    def rename(self, old: NodeId, new: NodeId) -> None:
        """Give node ``old`` the id ``new``, keeping its tree position.

        Models a neighbor assuming a departed node's identity/key space in
        place.
        """
        self._require(old)
        if new in self._parent:
            raise TopologyError(f"node {new} already in tree")
        parent = self._parent.pop(old)
        children = self._children.pop(old)
        self._parent[new] = parent
        self._children[new] = children
        for child in children:
            self._parent[child] = new
        if parent is None:
            self._root = new
        else:
            siblings = self._children[parent]
            siblings[siblings.index(old)] = new
        self._mutated()

    # -- queries ------------------------------------------------------------
    @property
    def root(self) -> NodeId:
        """The authority node of the tree's key."""
        return self._root

    def __contains__(self, node: NodeId) -> bool:
        return node in self._parent

    def __len__(self) -> int:
        return len(self._parent)

    def __iter__(self) -> Iterator[NodeId]:
        return iter(self._parent)

    @property
    def nodes(self) -> Iterable[NodeId]:
        """All node ids in the tree."""
        return self._parent.keys()

    def parent(self, node: NodeId) -> Optional[NodeId]:
        """Parent of ``node`` (``None`` for the root)."""
        self._require(node)
        return self._parent[node]

    def children(self, node: NodeId) -> tuple[NodeId, ...]:
        """Children of ``node`` in insertion order."""
        self._require(node)
        return tuple(self._children[node])

    def degree(self, node: NodeId) -> int:
        """Number of children of ``node``."""
        self._require(node)
        return len(self._children[node])

    def is_leaf(self, node: NodeId) -> bool:
        """Whether ``node`` has no children."""
        self._require(node)
        return not self._children[node]

    def depth(self, node: NodeId) -> int:
        """Number of hops from ``node`` up to the root."""
        return len(self._path(node)) - 1

    def path_to_root(self, node: NodeId) -> list[NodeId]:
        """Nodes from ``node`` (inclusive) up to the root (inclusive)."""
        return list(self._path(node))

    def ancestors(self, node: NodeId) -> list[NodeId]:
        """Strict ancestors of ``node``, nearest first."""
        return self.path_to_root(node)[1:]

    def lca(self, first: NodeId, second: NodeId) -> NodeId:
        """Lowest common ancestor of two nodes."""
        first_path = set(self._path(first))
        current = second
        while current not in first_path:
            current = self._parent[current]
            if current is None:  # pragma: no cover - defensive
                raise TopologyError("nodes share no ancestor")
        return current

    def distance(self, first: NodeId, second: NodeId) -> int:
        """Tree distance (number of edges) between two nodes."""
        meet = self.lca(first, second)
        return (
            self.depth(first) + self.depth(second) - 2 * self.depth(meet)
        )

    def on_path_to_root(self, node: NodeId, candidate: NodeId) -> bool:
        """Whether ``candidate`` lies on ``node``'s path to the root."""
        self._require(candidate)
        return candidate in self._path(node)

    def child_branch(self, node: NodeId, descendant: NodeId) -> NodeId:
        """Which child of ``node`` the given strict descendant hangs under.

        Raises :class:`TopologyError` if ``descendant`` is not a strict
        descendant of ``node``.
        """
        self._require(node)
        path = self._path(descendant)
        try:
            index = path.index(node)
        except ValueError:
            raise TopologyError(
                f"{descendant} is not a descendant of {node}"
            ) from None
        if index == 0:
            raise TopologyError(f"{descendant} is not a strict descendant")
        return path[index - 1]

    def descendants(self, node: NodeId) -> Iterator[NodeId]:
        """All strict descendants, depth-first."""
        self._require(node)
        stack = list(self._children[node])
        while stack:
            current = stack.pop()
            yield current
            stack.extend(self._children[current])

    def subtree_size(self, node: NodeId) -> int:
        """Number of nodes in ``node``'s subtree (including itself)."""
        return 1 + sum(1 for _ in self.descendants(node))

    def leaves(self) -> Iterator[NodeId]:
        """All leaf nodes."""
        for node, children in self._children.items():
            if not children:
                yield node

    def height(self) -> int:
        """Maximum depth over all nodes."""
        best = 0
        for node in self.leaves():
            depth = self.depth(node)
            if depth > best:
                best = depth
        return best

    def mean_depth(self) -> float:
        """Average depth over all nodes (the paper's expected query cost
        driver: deeper trees mean longer cache-miss paths)."""
        total = sum(self.depth(node) for node in self._parent)
        return total / len(self._parent)

    def to_networkx(self) -> nx.DiGraph:
        """Directed child->parent graph view (for analysis/plotting)."""
        graph = nx.DiGraph()
        graph.add_nodes_from(self._parent)
        for node, parent in self._parent.items():
            if parent is not None:
                graph.add_edge(node, parent)
        return graph

    # -- invariants -----------------------------------------------------------
    def validate(self) -> None:
        """Check structural invariants; raise :class:`TopologyError` if broken.

        Invariants: exactly one root; parent/children maps mirror each
        other; every node reachable from the root; no cycles.
        """
        if self._parent.get(self._root, "missing") is not None:
            raise TopologyError("root has a parent or is missing")
        for node, parent in self._parent.items():
            if parent is None:
                if node != self._root:
                    raise TopologyError(f"second root {node}")
                continue
            if parent not in self._parent:
                raise TopologyError(f"dangling parent {parent} of {node}")
            if node not in self._children[parent]:
                raise TopologyError(
                    f"{node} missing from children of {parent}"
                )
        for node, children in self._children.items():
            if len(set(children)) != len(children):
                raise TopologyError(f"duplicate children of {node}")
            for child in children:
                if self._parent.get(child) != node:
                    raise TopologyError(
                        f"child {child} of {node} disagrees on parent"
                    )
        # Reachability doubles as the cycle check.
        seen = {self._root}
        stack = [self._root]
        while stack:
            for child in self._children[stack.pop()]:
                if child in seen:
                    raise TopologyError(f"cycle through {child}")
                seen.add(child)
                stack.append(child)
        if len(seen) != len(self._parent):
            raise TopologyError("unreachable nodes present")

    def _require(self, node: NodeId) -> None:
        if node not in self._parent:
            raise NodeNotFoundError(f"node {node} not in tree")

    def __repr__(self) -> str:
        return f"SearchTree(root={self._root}, nodes={len(self._parent)})"
