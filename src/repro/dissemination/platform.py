"""The topic-based dissemination platform (the paper's future work).

Architecture
------------
One :class:`DisseminationPlatform` owns a Chord overlay and, per topic:

- the topic key (a stable hash of its name),
- the authority node (the key's Chord owner),
- the index search tree (union of all lookup routes toward the key),
- a :class:`~repro.core.protocol.DupProtocol` instance holding the
  topic's subscriber lists.

``subscribe`` / ``unsubscribe`` drive Figure 3's state machine with
explicit control messages that hop along the topic's search tree (charged
per hop, same cost model as the reproduction).  ``publish`` routes the
payload up the publisher's search path to the authority, which then
pushes it down the DUP tree — one overlay hop per tree edge, skipping
every uninterested relay.

Delivery is at-most-once per (event, subscriber) and the platform tracks
per-category hop counts so applications can compare fan-out cost against
full-tree multicast (:meth:`DisseminationPlatform.multicast_cost_bound`).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Optional

import numpy as np

from repro.core.maintenance import DupMaintenance
from repro.core.protocol import DupProtocol
from repro.errors import NodeNotFoundError, ReproError
from repro.sim.core import Environment
from repro.stats.distributions import Distribution, Exponential
from repro.topology.chord import ChordRing, chord_hash
from repro.topology.chord_tree import chord_search_tree
from repro.topology.tree import SearchTree

NodeId = int
DeliveryCallback = Callable[["Delivery"], None]


class TopicError(ReproError):
    """An invalid topic operation."""


@dataclass(frozen=True)
class Delivery:
    """One payload delivered to one subscriber."""

    topic: str
    event_id: int
    payload: Any
    publisher: NodeId
    subscriber: NodeId
    published_at: float
    delivered_at: float

    @property
    def delay(self) -> float:
        """End-to-end dissemination delay."""
        return self.delivered_at - self.published_at


@dataclass
class PlatformStats:
    """Aggregate traffic counters for the platform."""

    publish_hops: int = 0
    push_hops: int = 0
    control_hops: int = 0
    deliveries: int = 0
    duplicate_suppressions: int = 0

    @property
    def total_hops(self) -> int:
        """All message hops the platform generated."""
        return self.publish_hops + self.push_hops + self.control_hops


@dataclass
class _Topic:
    name: str
    key: int
    tree: SearchTree
    protocol: DupProtocol
    subscribers: set[NodeId] = field(default_factory=set)
    seen_events: dict[NodeId, set[int]] = field(default_factory=dict)


class TopicHandle:
    """Read-only view of one topic's state (for inspection/tests)."""

    def __init__(self, topic: _Topic):
        self._topic = topic

    @property
    def name(self) -> str:
        """Topic name."""
        return self._topic.name

    @property
    def authority(self) -> NodeId:
        """The topic's authority node (root of its search tree)."""
        return self._topic.tree.root

    @property
    def subscribers(self) -> frozenset[NodeId]:
        """Currently subscribed nodes."""
        return frozenset(self._topic.subscribers)

    def s_list(self, node: NodeId) -> tuple[NodeId, ...]:
        """The node's DUP subscriber list for this topic."""
        return self._topic.protocol.s_list(node).snapshot()

    def dup_tree_edges(self) -> int:
        """Push hops one dissemination costs right now."""
        topic = self._topic
        hops = 0
        frontier = [topic.tree.root]
        seen = {topic.tree.root}
        while frontier:
            sender = frontier.pop()
            if sender != topic.tree.root and not topic.protocol.in_dup_tree(
                sender
            ):
                continue
            for target in topic.protocol.push_targets(sender):
                hops += 1
                if target not in seen:
                    seen.add(target)
                    frontier.append(target)
        return hops

    def search_path_cost(self) -> int:
        """Edges on the union of root-to-subscriber search paths.

        This is what a SCRIBE-style hop-by-hop multicast would pay per
        event; compare with :meth:`dup_tree_edges`.
        """
        topic = self._topic
        edges: set[tuple[NodeId, NodeId]] = set()
        for subscriber in topic.subscribers:
            current = subscriber
            while current != topic.tree.root:
                parent = topic.tree.parent(current)
                edges.add((current, parent))
                current = parent
        return len(edges)


class DisseminationPlatform:
    """Topic-based publish/subscribe over a Chord overlay with DUP trees.

    Parameters
    ----------
    env:
        Simulation environment (the platform is event-driven).
    num_nodes:
        Overlay size; node ids are Chord identifiers.
    seed:
        Seed for the overlay layout.
    hop_latency:
        Per-hop delay distribution (default Exponential(0.1), the paper's
        transport model).
    bits:
        Chord identifier-space size.
    """

    def __init__(
        self,
        env: Environment,
        num_nodes: int,
        seed: int = 1,
        hop_latency: Optional[Distribution] = None,
        bits: int = 32,
    ):
        self.env = env
        self._rng = np.random.default_rng(seed)
        self.ring = ChordRing.random(num_nodes, self._rng, bits=bits)
        self._bits = bits
        self._latency = hop_latency or Exponential(0.1)
        self._latency_rng = np.random.default_rng(seed + 1)
        self._topics: dict[str, _Topic] = {}
        self._departed: set[NodeId] = set()
        self._callbacks: dict[NodeId, DeliveryCallback] = {}
        self._event_ids = itertools.count()
        self.stats = PlatformStats()

    # -- node-facing API --------------------------------------------------
    @property
    def nodes(self) -> tuple[NodeId, ...]:
        """All overlay node ids."""
        return self.ring.node_ids

    def on_delivery(self, node: NodeId, callback: DeliveryCallback) -> None:
        """Register ``node``'s delivery callback."""
        self._require_node(node)
        self._callbacks[node] = callback

    def create_topic(self, name: str) -> TopicHandle:
        """Create (or fetch) the topic ``name``; returns its handle."""
        topic = self._topics.get(name)
        if topic is None:
            key = chord_hash(name, self._bits)
            tree = chord_search_tree(self.ring, key)
            for gone in self._departed:
                if gone in tree and gone != tree.root:
                    tree.splice_out(gone)
            protocol = DupProtocol(is_root=lambda n, t=tree: n == t.root)
            topic = _Topic(name=name, key=key, tree=tree, protocol=protocol)
            self._topics[name] = topic
        return TopicHandle(topic)

    def topic(self, name: str) -> TopicHandle:
        """Handle for an existing topic."""
        return TopicHandle(self._require_topic(name))

    def subscribe(self, node: NodeId, name: str) -> None:
        """Subscribe ``node`` to topic ``name`` (idempotent).

        Sends DUP ``subscribe``/``substitute`` control messages up the
        topic's search tree; the node starts receiving every subsequent
        publication.
        """
        self._require_node(node)
        topic = self._require_topic(name)
        if node in topic.subscribers:
            return
        topic.subscribers.add(node)
        if node == topic.tree.root:
            return  # the authority trivially sees everything
        result = topic.protocol.ensure_subscribed(node)
        self._walk_control(topic, node, result.upstream)

    def unsubscribe(self, node: NodeId, name: str) -> None:
        """Unsubscribe ``node`` from topic ``name`` (idempotent)."""
        self._require_node(node)
        topic = self._require_topic(name)
        if node not in topic.subscribers:
            return
        topic.subscribers.discard(node)
        if node == topic.tree.root:
            return
        result = topic.protocol.drop_subscription(node)
        self._walk_control(topic, node, result.upstream)

    def publish(self, node: NodeId, name: str, payload: Any) -> int:
        """Publish ``payload`` on topic ``name`` from ``node``.

        The payload is routed up the publisher's search path to the
        authority (charged per hop) and then pushed down the DUP tree.
        Returns the event id.
        """
        self._require_node(node)
        topic = self._require_topic(name)
        event_id = next(self._event_ids)
        published_at = self.env.now
        route_hops = topic.tree.depth(node)
        self.stats.publish_hops += route_hops
        route_delay = sum(
            self._latency.sample(self._latency_rng) for _ in range(route_hops)
        )
        self.env.call_later(
            route_delay,
            self._push_from,
            topic,
            topic.tree.root,
            event_id,
            payload,
            node,
            published_at,
        )
        return event_id

    # -- membership churn ---------------------------------------------------
    def node_left(self, node: NodeId) -> None:
        """A node departs gracefully from the overlay.

        Every topic repairs independently: the departing node's per-topic
        subscriber state is handed to its search-tree parent via
        Section III-C's handover flows.  The node's zone/key-space
        succession on the *ring* itself is out of scope here — topic
        trees are simply spliced, which matches how lookups would route
        after the DHT's own repair.
        """
        self._require_node(node)
        for topic in self._topics.values():
            if topic.tree.root == node:
                raise TopicError(
                    f"node {node} is the authority of {topic.name!r}; "
                    "authorities cannot leave in this platform"
                )
        for topic in self._topics.values():
            topic.subscribers.discard(node)
            topic.seen_events.pop(node, None)
            maintenance = self._maintenance_for(topic)
            maintenance.node_left(node)
        self._callbacks.pop(node, None)
        # Remove from the ring view by rebuilding the id set lazily: the
        # trees are already spliced; publishes route on the trees, so the
        # ring object is only used for validation/new-topic creation.
        self._departed.add(node)

    def is_member(self, node: NodeId) -> bool:
        """Whether ``node`` is currently part of the overlay."""
        return node in self.ring and node not in self._departed

    def _maintenance_for(self, topic: _Topic) -> DupMaintenance:
        return DupMaintenance(
            topic.protocol,
            topic.tree,
            emit=lambda from_node, payload, t=topic: self._walk_control(
                t, from_node, [payload]
            ),
            charge=lambda hops: setattr(
                self.stats, "control_hops", self.stats.control_hops + hops
            ),
        )

    # -- internals -----------------------------------------------------------
    def _push_from(
        self,
        topic: _Topic,
        sender: NodeId,
        event_id: int,
        payload: Any,
        publisher: NodeId,
        published_at: float,
    ) -> None:
        self._deliver_local(
            topic, sender, event_id, payload, publisher, published_at
        )
        if sender != topic.tree.root and not topic.protocol.in_dup_tree(
            sender
        ):
            return
        for target in topic.protocol.push_targets(sender):
            if target not in topic.tree:
                continue  # departed concurrently; repair flows pending
            self.stats.push_hops += 1
            delay = self._latency.sample(self._latency_rng)
            self.env.call_later(
                delay,
                self._push_from,
                topic,
                target,
                event_id,
                payload,
                publisher,
                published_at,
            )

    def _deliver_local(
        self,
        topic: _Topic,
        node: NodeId,
        event_id: int,
        payload: Any,
        publisher: NodeId,
        published_at: float,
    ) -> None:
        if node not in topic.subscribers:
            return  # a forwarding-only DUP-tree junction
        seen = topic.seen_events.setdefault(node, set())
        if event_id in seen:
            self.stats.duplicate_suppressions += 1
            return
        seen.add(event_id)
        self.stats.deliveries += 1
        callback = self._callbacks.get(node)
        if callback is not None:
            callback(
                Delivery(
                    topic=topic.name,
                    event_id=event_id,
                    payload=payload,
                    publisher=publisher,
                    subscriber=node,
                    published_at=published_at,
                    delivered_at=self.env.now,
                )
            )

    def _walk_control(
        self, topic: _Topic, from_node: NodeId, payloads: Iterable
    ) -> None:
        """Walk control payloads up the topic tree, charging per hop.

        Dissemination subscriptions are API calls, not query piggybacks,
        so every hop is an explicit (charged) control message.
        """
        current = from_node
        pending = list(payloads)
        while pending:
            parent = topic.tree.parent(current)
            if parent is None:
                break
            self.stats.control_hops += len(pending)
            continuations = []
            for payload in pending:
                result = topic.protocol.step(parent, payload)
                continuations.extend(result.upstream)
            pending = continuations
            current = parent

    def _require_topic(self, name: str) -> _Topic:
        topic = self._topics.get(name)
        if topic is None:
            raise TopicError(f"unknown topic {name!r}; create_topic first")
        return topic

    def _require_node(self, node: NodeId) -> None:
        if node not in self.ring or node in self._departed:
            raise NodeNotFoundError(f"node {node} not on the overlay")

    # -- analysis helpers ------------------------------------------------------
    def multicast_cost_bound(self, name: str) -> tuple[int, int]:
        """(DUP push hops, SCRIBE-style path-union hops) for one event."""
        handle = self.topic(name)
        return handle.dup_tree_edges(), handle.search_path_cost()
