"""A general data dissemination platform built on DUP trees.

The paper's conclusion: "DUP provides a low cost platform to propagate
index updates in peer-to-peer networks.  The idea of DUP may be applied
to more general data dissemination scenarios.  We plan to extend DUP to a
general data dissemination platform in overlay networks."  This package
is that extension:

- Topics are named channels; each topic's key hashes onto the overlay
  (a Chord ring), making the key's owner the topic's authority and the
  union of lookup routes the topic's search tree.
- Nodes subscribe/unsubscribe *explicitly* through the API (no interest
  inference — dissemination is application-driven), which maps 1:1 onto
  DUP's subscribe / unsubscribe / substitute machinery, virtual paths and
  all.
- Publishing routes the payload to the topic authority along the search
  tree, then pushes it down the per-topic DUP tree with one-hop
  short-cuts — so fan-out cost is proportional to the subscriber set, not
  to the overlay paths covering it (the SCRIBE/Bayeux comparison from the
  paper's related-work section).
"""

from repro.dissemination.platform import (
    Delivery,
    DisseminationPlatform,
    PlatformStats,
    TopicHandle,
)

__all__ = [
    "Delivery",
    "DisseminationPlatform",
    "PlatformStats",
    "TopicHandle",
]
