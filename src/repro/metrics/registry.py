"""Unified metrics registry: counters, gauges, and histograms.

One :class:`MetricsRegistry` per simulation absorbs every metric series
behind a single interface: the cost ledger's per-category hop counts,
the latency recorder's mean/percentiles/hit-rate, the transport's drop
count, population, and any monitor probes — all registered as *gauges*
reading the live source, so the registry adds no bookkeeping to the hot
path.  Schemes and experiments can additionally create their own
counters and histograms by name.

Snapshots (:meth:`MetricsRegistry.snapshot`) flatten the whole registry
into one ``{name: value}`` mapping; :meth:`record_snapshot` appends a
timestamped copy to the in-memory series, which the engine samples
periodically when snapshotting is enabled and the JSONL exporter dumps
for offline analysis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Mapping, Optional, Sequence

from repro.stats.running import RunningStat, percentile


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "_value")

    def __init__(self, name: str):
        self.name = name
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be non-negative) to the count."""
        if amount < 0:
            raise ValueError(f"counter increments must be >= 0: {amount}")
        self._value += amount

    @property
    def value(self) -> int:
        """The current count."""
        return self._value

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, value={self._value})"


class Gauge:
    """A point-in-time value, either set directly or read via callback."""

    __slots__ = ("name", "_fn", "_value")

    def __init__(self, name: str, fn: Optional[Callable[[], float]] = None):
        self.name = name
        self._fn = fn
        self._value = float("nan")

    def set(self, value: float) -> None:
        """Set the gauge (only valid for non-callback gauges)."""
        if self._fn is not None:
            raise ValueError(f"gauge {self.name!r} is callback-backed")
        self._value = float(value)

    @property
    def value(self) -> float:
        """The current value (samples the callback when present)."""
        if self._fn is not None:
            return float(self._fn())
        return self._value

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, value={self.value})"


class Histogram:
    """An observation accumulator with mean, extrema, and percentiles.

    Keeps raw samples (one float each) so arbitrary percentiles are
    exact; the paper-scale runs observe one value per query, matching
    the latency recorder's own memory profile.

    ``max_samples`` caps the retained sample list for streaming use
    (ROADMAP item 1): when the list would exceed the cap, it is
    deterministically decimated (every second sample dropped, retention
    stride doubled), so percentiles become approximate while
    count/mean/min/max stay exact.  The default (``None``) keeps every
    sample — the behaviour the goldens pin.
    """

    __slots__ = ("name", "max_samples", "_stat", "_samples", "_stride", "_phase")

    def __init__(self, name: str, max_samples: Optional[int] = None):
        if max_samples is not None and max_samples < 2:
            raise ValueError(
                f"max_samples must be >= 2, got {max_samples}"
            )
        self.name = name
        self.max_samples = max_samples
        self._stat = RunningStat()
        self._samples: list[float] = []
        self._stride = 1
        self._phase = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        self._stat.add(value)
        if self.max_samples is None:
            self._samples.append(float(value))
            return
        if self._phase == 0:
            self._samples.append(float(value))
            if len(self._samples) > self.max_samples:
                self._samples = self._samples[::2]
                self._stride *= 2
        self._phase = (self._phase + 1) % self._stride

    @property
    def count(self) -> int:
        """Number of observations."""
        return self._stat.count

    @property
    def mean(self) -> float:
        """Mean observation (``nan`` when empty)."""
        return self._stat.mean

    @property
    def minimum(self) -> float:
        """Smallest observation (``nan`` when empty)."""
        return self._stat.minimum

    @property
    def maximum(self) -> float:
        """Largest observation (``nan`` when empty)."""
        return self._stat.maximum

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile of the observations."""
        return percentile(self._samples, q)

    def summary(self, qs: Iterable[float] = (50, 95, 99)) -> dict[str, float]:
        """Count/mean/min/max plus the requested percentiles."""
        return {
            "count": self.count,
            "mean": self.mean,
            "min": self.minimum,
            "max": self.maximum,
            **{f"p{q:g}": self.percentile(q) for q in qs},
        }

    @property
    def samples(self) -> tuple[float, ...]:
        """An immutable copy of the raw observations."""
        return tuple(self._samples)

    def merge(self, other: "Histogram") -> "Histogram":
        """A new histogram combining this one's samples with ``other``'s.

        Raw samples are concatenated, so percentiles (which sort) and
        extrema are exactly what a single histogram fed both sample sets
        would report; mean/variance use the numerically stable pairwise
        merge.
        """
        merged = Histogram(self.name, self.max_samples)
        merged._stat = self._stat.merge(other._stat)
        merged._samples = [*self._samples, *other._samples]
        merged._stride = max(self._stride, other._stride)
        if merged.max_samples is not None:
            while len(merged._samples) > merged.max_samples:
                merged._samples = merged._samples[::2]
                merged._stride *= 2
        return merged

    def __repr__(self) -> str:
        return f"Histogram({self.name!r}, count={self.count})"


class MetricsRegistry:
    """Central name-to-instrument registry with periodic snapshotting.

    Parameters
    ----------
    clock:
        Returns current simulation time (stamps snapshots).
    """

    def __init__(self, clock: Callable[[], float] = lambda: 0.0):
        self._clock = clock
        self._instruments: dict[str, object] = {}
        self._snapshots: list[dict] = []

    # -- registration -------------------------------------------------------
    def _get_or_create(self, name: str, kind: type, factory):
        existing = self._instruments.get(name)
        if existing is not None:
            if not isinstance(existing, kind):
                raise ValueError(
                    f"metric {name!r} is a {type(existing).__name__}, "
                    f"not a {kind.__name__}"
                )
            return existing
        instrument = factory()
        self._instruments[name] = instrument
        return instrument

    def counter(self, name: str) -> Counter:
        """Get or create the counter called ``name``."""
        return self._get_or_create(name, Counter, lambda: Counter(name))

    def gauge(
        self, name: str, fn: Optional[Callable[[], float]] = None
    ) -> Gauge:
        """Get or create the gauge called ``name``.

        A callback passed on first registration makes the gauge read
        live from its source; re-registration must not change the
        callback.
        """
        gauge = self._get_or_create(name, Gauge, lambda: Gauge(name, fn))
        if fn is not None and gauge._fn is not fn and gauge._fn is not None:
            raise ValueError(f"gauge {name!r} already has a callback")
        return gauge

    def histogram(
        self, name: str, max_samples: Optional[int] = None
    ) -> Histogram:
        """Get or create the histogram called ``name``.

        ``max_samples`` applies only on first creation; an existing
        histogram keeps its original retention policy.
        """
        return self._get_or_create(
            name, Histogram, lambda: Histogram(name, max_samples)
        )

    # -- inspection ----------------------------------------------------------
    @property
    def names(self) -> tuple[str, ...]:
        """All registered metric names, sorted."""
        return tuple(sorted(self._instruments))

    def get(self, name: str):
        """The instrument called ``name`` (KeyError when absent)."""
        return self._instruments[name]

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def __len__(self) -> int:
        return len(self._instruments)

    # -- snapshots -----------------------------------------------------------
    def snapshot(self) -> dict[str, object]:
        """Flatten the registry into one timestamped mapping.

        Counters and gauges contribute their value under their name;
        histograms contribute their summary dict.
        """
        values: dict[str, object] = {}
        for name in self.names:
            instrument = self._instruments[name]
            if isinstance(instrument, Histogram):
                values[name] = instrument.summary()
            else:
                values[name] = instrument.value
        return {"time": self._clock(), "values": values}

    def record_snapshot(self) -> dict[str, object]:
        """Take a snapshot and append it to the retained series."""
        shot = self.snapshot()
        self._snapshots.append(shot)
        return shot

    @property
    def snapshots(self) -> tuple[Mapping[str, object], ...]:
        """All recorded snapshots, in time order."""
        return tuple(self._snapshots)

    def freeze(self) -> "FrozenMetrics":
        """A picklable, mergeable copy of the registry's current state.

        Live gauges are sampled once; histograms keep their raw samples;
        any recorded snapshot series rides along.  Worker processes ship
        frozen registries back to the parent, which merges them with
        :meth:`FrozenMetrics.merge`.
        """
        series: dict[str, tuple[float, ...]] = {}
        histograms: dict[str, tuple[float, ...]] = {}
        for name in self.names:
            instrument = self._instruments[name]
            if isinstance(instrument, Histogram):
                histograms[name] = instrument.samples
            else:
                series[name] = (float(instrument.value),)
        return FrozenMetrics(
            time=self._clock(),
            series=series,
            histograms=histograms,
            snapshots=tuple(self._snapshots),
        )

    def __repr__(self) -> str:
        return (
            f"MetricsRegistry(instruments={len(self._instruments)}, "
            f"snapshots={len(self._snapshots)})"
        )


@dataclass(frozen=True)
class FrozenMetrics:
    """Immutable registry state, safe to pickle across process boundaries.

    ``series`` holds one final value per trial for every counter/gauge
    (a single-trial freeze has length-1 tuples); ``histograms`` holds the
    concatenated raw samples; ``snapshots`` the recorded time series.
    The JSONL exporter accepts a frozen registry wherever it accepts a
    live one (both expose ``snapshots`` and ``snapshot()``).
    """

    time: float
    series: Mapping[str, tuple[float, ...]]
    histograms: Mapping[str, tuple[float, ...]]
    snapshots: tuple[Mapping[str, object], ...] = ()
    trials: int = 1

    @classmethod
    def merge(cls, parts: Sequence["FrozenMetrics"]) -> "FrozenMetrics":
        """Combine per-trial registries into one cross-trial view.

        Counter/gauge series and histogram samples are concatenated in
        ``parts`` order (deterministic regardless of which worker ran
        which trial, because the caller orders ``parts`` by trial index);
        snapshot series are likewise concatenated.
        """
        if not parts:
            raise ValueError("need at least one FrozenMetrics to merge")
        series: dict[str, tuple[float, ...]] = {}
        histograms: dict[str, tuple[float, ...]] = {}
        snapshots: list[Mapping[str, object]] = []
        for part in parts:
            for name, values in part.series.items():
                series[name] = series.get(name, ()) + tuple(values)
            for name, samples in part.histograms.items():
                histograms[name] = histograms.get(name, ()) + tuple(samples)
            snapshots.extend(part.snapshots)
        return cls(
            time=max(part.time for part in parts),
            series=series,
            histograms=histograms,
            snapshots=tuple(snapshots),
            trials=sum(part.trials for part in parts),
        )

    def summary(self) -> dict[str, dict[str, float]]:
        """Per-metric cross-trial statistics (count/mean/min/max, and
        percentiles for histogram-backed metrics)."""
        out: dict[str, dict[str, float]] = {}
        for name, values in self.series.items():
            stat = RunningStat()
            stat.extend(values)
            out[name] = {
                "count": stat.count,
                "mean": stat.mean,
                "min": stat.minimum,
                "max": stat.maximum,
            }
        for name, samples in self.histograms.items():
            stat = RunningStat()
            stat.extend(samples)
            out[name] = {
                "count": stat.count,
                "mean": stat.mean,
                "min": stat.minimum,
                "max": stat.maximum,
                **{f"p{q:g}": percentile(samples, q) for q in (50, 95, 99)},
            }
        return out

    def snapshot(self) -> dict[str, object]:
        """One flattened snapshot (export-compatible with the live
        registry): per-trial means for series, summaries for histograms."""
        summary = self.summary()
        values: dict[str, object] = {}
        for name in sorted(summary):
            if name in self.histograms:
                values[name] = summary[name]
            else:
                values[name] = summary[name]["mean"]
        return {"time": self.time, "values": values, "trials": self.trials}

    def __repr__(self) -> str:
        return (
            f"FrozenMetrics(trials={self.trials}, "
            f"series={len(self.series)}, histograms={len(self.histograms)}, "
            f"snapshots={len(self.snapshots)})"
        )
