"""Human-readable rendering of simulation metrics."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Mapping

from repro.stats.confidence import ConfidenceInterval

#: The tail percentiles every report carries (keys of
#: ``latency_percentiles``).
PERCENTILE_KEYS = ("p50", "p95", "p99")


@dataclass(frozen=True)
class MetricsReport:
    """A snapshot of the two paper metrics plus supporting detail.

    Attributes
    ----------
    scheme:
        Name of the scheme that produced the numbers.
    queries:
        Number of post-warm-up queries.
    mean_latency:
        Average query latency in hops.
    latency_ci:
        95 % confidence interval of the latency.
    cost_per_query:
        Average query cost in hops per query.
    hit_rate:
        Fraction of queries answered from the local cache.
    hop_breakdown:
        Post-warm-up hops by message category.
    latency_percentiles:
        Tail latency percentiles keyed ``"p50"``/``"p95"``/``"p99"``
        (empty when per-query samples were not retained).
    dropped:
        Messages the transport dropped to churn during the run.
    give_ups:
        Reliable deliveries abandoned after exhausting their retry
        budget ("gave up"; 0 without a reliable channel).
    stale_read_fraction:
        Fraction of post-warm-up reads that served a version older than
        the authority's current one (NaN when no reads happened).
    """

    scheme: str
    queries: int
    mean_latency: float
    latency_ci: ConfidenceInterval
    cost_per_query: float
    hit_rate: float
    hop_breakdown: Mapping[str, int]
    latency_percentiles: Mapping[str, float] = field(default_factory=dict)
    dropped: int = 0
    give_ups: int = 0
    stale_read_fraction: float = math.nan

    def _percentile(self, key: str) -> float:
        return float(self.latency_percentiles.get(key, math.nan))

    def to_row(self) -> dict[str, object]:
        """Flatten into a dict suitable for table printing."""
        return {
            "scheme": self.scheme,
            "queries": self.queries,
            "latency": round(self.mean_latency, 4),
            "latency_ci": str(self.latency_ci),
            **{
                key: round(self._percentile(key), 4)
                for key in PERCENTILE_KEYS
            },
            "cost": round(self.cost_per_query, 4),
            "hit_rate": round(self.hit_rate, 4),
            "dropped": self.dropped,
            "give_ups": self.give_ups,
            "stale_frac": round(self.stale_read_fraction, 4)
            if not math.isnan(self.stale_read_fraction)
            else math.nan,
            **{f"hops_{k}": v for k, v in self.hop_breakdown.items()},
        }

    def __str__(self) -> str:
        breakdown = ", ".join(
            f"{name}={hops}" for name, hops in self.hop_breakdown.items() if hops
        )
        tails = ""
        if self.latency_percentiles:
            tails = " " + " ".join(
                f"{key}={self._percentile(key):.4g}"
                for key in PERCENTILE_KEYS
            )
        dropped = f" dropped={self.dropped}" if self.dropped else ""
        give_ups = f" give_ups={self.give_ups}" if self.give_ups else ""
        stale = (
            f" stale={self.stale_read_fraction:.3g}"
            if not math.isnan(self.stale_read_fraction)
            else ""
        )
        return (
            f"[{self.scheme}] queries={self.queries} "
            f"latency={self.mean_latency:.4g} ({self.latency_ci})"
            f"{tails} "
            f"cost={self.cost_per_query:.4g} hit_rate={self.hit_rate:.3g}"
            f"{stale}{dropped}{give_ups} "
            f"({breakdown})"
        )
