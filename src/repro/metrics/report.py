"""Human-readable rendering of simulation metrics."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.stats.confidence import ConfidenceInterval


@dataclass(frozen=True)
class MetricsReport:
    """A snapshot of the two paper metrics plus supporting detail.

    Attributes
    ----------
    scheme:
        Name of the scheme that produced the numbers.
    queries:
        Number of post-warm-up queries.
    mean_latency:
        Average query latency in hops.
    latency_ci:
        95 % confidence interval of the latency.
    cost_per_query:
        Average query cost in hops per query.
    hit_rate:
        Fraction of queries answered from the local cache.
    hop_breakdown:
        Post-warm-up hops by message category.
    """

    scheme: str
    queries: int
    mean_latency: float
    latency_ci: ConfidenceInterval
    cost_per_query: float
    hit_rate: float
    hop_breakdown: Mapping[str, int]

    def to_row(self) -> dict[str, object]:
        """Flatten into a dict suitable for table printing."""
        return {
            "scheme": self.scheme,
            "queries": self.queries,
            "latency": round(self.mean_latency, 4),
            "latency_ci": str(self.latency_ci),
            "cost": round(self.cost_per_query, 4),
            "hit_rate": round(self.hit_rate, 4),
            **{f"hops_{k}": v for k, v in self.hop_breakdown.items()},
        }

    def __str__(self) -> str:
        breakdown = ", ".join(
            f"{name}={hops}" for name, hops in self.hop_breakdown.items() if hops
        )
        return (
            f"[{self.scheme}] queries={self.queries} "
            f"latency={self.mean_latency:.4g} ({self.latency_ci}) "
            f"cost={self.cost_per_query:.4g} hit_rate={self.hit_rate:.3g} "
            f"({breakdown})"
        )
