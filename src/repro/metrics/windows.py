"""Fixed-memory streaming telemetry: reservoirs, time buckets, timeline.

Long sweeps cannot afford the unbounded sample lists the registry's
histograms and the monitor's series keep by default (ROADMAP item 1).
This module provides the bounded replacements:

* :class:`WindowedReservoir` — exact count/mean/min/max plus a
  deterministically decimated sample reservoir for approximate
  percentiles, in O(capacity) memory regardless of stream length.
* :class:`TimeBuckets` — a mergeable, bounded ring of fixed-width time
  buckets (count/mean/min/max/last per bucket), evicting the oldest
  window when full.
* :class:`TreeTimeline` — the DUP tree-evolution timeline: depth,
  fanout, population, subscriber count, and interior-node load sampled
  per window, reconstructible from a ``--telemetry-out`` JSONL export.

Everything here is a pure observer of simulation state: no randomness
is consumed (decimation is deterministic stride-doubling), so enabling
a timeline never perturbs a run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator, Optional

from repro.errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.simulation import Simulation


def decimate(samples: list[float]) -> list[float]:
    """Drop every second sample (deterministic reservoir shrink)."""
    return samples[::2]


class WindowedReservoir:
    """Bounded sample reservoir with exact first-order statistics.

    ``count``/``mean``/``minimum``/``maximum`` are exact over the whole
    stream; ``percentile`` is approximate, computed over a reservoir
    that keeps every ``stride``-th observation and halves itself
    (doubling the stride) whenever it would exceed ``capacity``.  The
    decimation is deterministic, so two identical streams always yield
    identical reservoirs.
    """

    __slots__ = (
        "capacity",
        "count",
        "total",
        "_minimum",
        "_maximum",
        "_samples",
        "_stride",
        "_phase",
    )

    def __init__(self, capacity: int = 512):
        if capacity < 2:
            raise ConfigError(f"capacity must be >= 2, got {capacity}")
        self.capacity = int(capacity)
        self.count = 0
        self.total = 0.0
        self._minimum = float("inf")
        self._maximum = float("-inf")
        self._samples: list[float] = []
        self._stride = 1
        self._phase = 0  # observations since the last retained sample

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self._minimum:
            self._minimum = value
        if value > self._maximum:
            self._maximum = value
        if self._phase == 0:
            self._samples.append(value)
            if len(self._samples) > self.capacity:
                self._samples = decimate(self._samples)
                self._stride *= 2
        self._phase = (self._phase + 1) % self._stride

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else float("nan")

    @property
    def minimum(self) -> float:
        return self._minimum if self.count else float("nan")

    @property
    def maximum(self) -> float:
        return self._maximum if self.count else float("nan")

    @property
    def samples(self) -> tuple[float, ...]:
        """The retained (decimated) samples, in arrival order."""
        return tuple(self._samples)

    @property
    def stride(self) -> int:
        """Current decimation stride (1 = every sample retained)."""
        return self._stride

    def percentile(self, q: float) -> float:
        """Approximate ``q``-th percentile from the reservoir."""
        if not self._samples:
            return float("nan")
        ordered = sorted(self._samples)
        if q <= 0:
            return ordered[0]
        if q >= 100:
            return ordered[-1]
        rank = (q / 100.0) * (len(ordered) - 1)
        low = int(rank)
        frac = rank - low
        if low + 1 >= len(ordered):
            return ordered[-1]
        return ordered[low] * (1 - frac) + ordered[low + 1] * frac

    def merge(self, other: "WindowedReservoir") -> "WindowedReservoir":
        """Combine two reservoirs (exact stats stay exact)."""
        merged = WindowedReservoir(max(self.capacity, other.capacity))
        merged.count = self.count + other.count
        merged.total = self.total + other.total
        merged._minimum = min(self._minimum, other._minimum)
        merged._maximum = max(self._maximum, other._maximum)
        merged._samples = list(self._samples) + list(other._samples)
        merged._stride = max(self._stride, other._stride)
        while len(merged._samples) > merged.capacity:
            merged._samples = decimate(merged._samples)
            merged._stride *= 2
        return merged

    def summary(self) -> dict:
        return {
            "count": self.count,
            "mean": self.mean,
            "min": self.minimum,
            "max": self.maximum,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "retained": len(self._samples),
            "stride": self._stride,
        }

    def __len__(self) -> int:
        return len(self._samples)

    def __repr__(self) -> str:
        return (
            f"WindowedReservoir(count={self.count}, "
            f"retained={len(self._samples)}, stride={self._stride})"
        )


@dataclass
class BucketStats:
    """Aggregates for one time window."""

    start: float
    count: int = 0
    total: float = 0.0
    minimum: float = float("inf")
    maximum: float = float("-inf")
    last: float = float("nan")

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        self.last = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else float("nan")

    def absorb(self, other: "BucketStats") -> None:
        """Fold another window's aggregates into this one (same start)."""
        self.count += other.count
        self.total += other.total
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)
        if other.count:
            self.last = other.last


class TimeBuckets:
    """Mergeable fixed-width time buckets with bounded retention.

    Observations land in the bucket ``floor(time / width)``; at most
    ``max_buckets`` windows are retained, the oldest evicted first, so
    memory is bounded by the window count, never the run length.
    Evictions are counted in :attr:`evicted`.
    """

    __slots__ = ("width", "max_buckets", "_buckets", "evicted")

    def __init__(self, width: float, max_buckets: int = 256):
        if width <= 0:
            raise ConfigError(f"width must be positive, got {width}")
        if max_buckets < 1:
            raise ConfigError(
                f"max_buckets must be positive, got {max_buckets}"
            )
        self.width = float(width)
        self.max_buckets = int(max_buckets)
        self._buckets: dict[float, BucketStats] = {}
        self.evicted = 0

    def observe(self, time: float, value: float) -> None:
        start = (float(time) // self.width) * self.width
        bucket = self._buckets.get(start)
        if bucket is None:
            bucket = BucketStats(start)
            self._buckets[start] = bucket
            self._trim()
        bucket.observe(float(value))

    def _trim(self) -> None:
        while len(self._buckets) > self.max_buckets:
            del self._buckets[min(self._buckets)]
            self.evicted += 1

    @property
    def buckets(self) -> tuple[BucketStats, ...]:
        """Retained windows, oldest first."""
        return tuple(
            self._buckets[start] for start in sorted(self._buckets)
        )

    def series(self, stat: str = "mean") -> list[tuple[float, float]]:
        """``(window_start, stat)`` pairs, oldest first."""
        return [
            (bucket.start, getattr(bucket, stat)) for bucket in self.buckets
        ]

    def merge(self, other: "TimeBuckets") -> "TimeBuckets":
        """Combine same-width bucket sets (e.g. across trials)."""
        if other.width != self.width:
            raise ConfigError(
                f"cannot merge widths {self.width} and {other.width}"
            )
        merged = TimeBuckets(
            self.width, max(self.max_buckets, other.max_buckets)
        )
        for source in (self, other):
            for bucket in source.buckets:
                existing = merged._buckets.get(bucket.start)
                if existing is None:
                    merged._buckets[bucket.start] = BucketStats(
                        bucket.start,
                        bucket.count,
                        bucket.total,
                        bucket.minimum,
                        bucket.maximum,
                        bucket.last,
                    )
                else:
                    existing.absorb(bucket)
        merged._trim()
        merged.evicted += self.evicted + other.evicted
        return merged

    def __len__(self) -> int:
        return len(self._buckets)

    def __repr__(self) -> str:
        return (
            f"TimeBuckets(width={self.width}, windows={len(self._buckets)},"
            f" evicted={self.evicted})"
        )


class TreeTimeline:
    """The DUP tree-evolution timeline, sampled once per window.

    Metrics (one :class:`TimeBuckets` each):

    - ``tree-depth`` — height of the search tree;
    - ``mean-fanout`` — average child count over interior nodes;
    - ``population`` — nodes currently in the tree;
    - ``subscribers`` — nodes holding an active subscription (DUP only);
    - ``dup-tree-size`` — nodes in the DUP update tree (DUP only);
    - ``interior-load`` — largest subscriber list held by any single
      node (DUP only) — the per-node propagation burden.

    ``sample(sim)`` is called by the engine's timeline process; tests
    may also feed metrics directly through :meth:`observe`.
    """

    METRICS = (
        "tree-depth",
        "mean-fanout",
        "population",
        "subscribers",
        "dup-tree-size",
        "interior-load",
    )

    def __init__(self, window: float = 600.0, max_buckets: int = 256):
        if window <= 0:
            raise ConfigError(f"window must be positive, got {window}")
        self.window = float(window)
        self.max_buckets = int(max_buckets)
        self._metrics: dict[str, TimeBuckets] = {}
        self.samples_taken = 0

    def observe(self, metric: str, time: float, value: float) -> None:
        buckets = self._metrics.get(metric)
        if buckets is None:
            buckets = TimeBuckets(self.window, self.max_buckets)
            self._metrics[metric] = buckets
        buckets.observe(time, value)

    def sample(self, sim: "Simulation") -> None:
        """Take one snapshot of the simulation's tree shape."""
        now = sim.env.now
        tree = sim.tree
        self.observe("tree-depth", now, float(tree.height()))
        self.observe("population", now, float(len(tree)))
        interiors = [n for n in tree.nodes if not tree.is_leaf(n)]
        fanout = (
            sum(tree.degree(n) for n in interiors) / len(interiors)
            if interiors
            else 0.0
        )
        self.observe("mean-fanout", now, fanout)
        scheme = sim.scheme
        if hasattr(scheme, "subscribed_nodes"):
            self.observe(
                "subscribers", now, float(len(scheme.subscribed_nodes()))
            )
        if hasattr(scheme, "dup_tree_size"):
            self.observe("dup-tree-size", now, float(scheme.dup_tree_size()))
        protocol = getattr(scheme, "protocol", None)
        if protocol is not None:
            load = max(
                (
                    len(protocol.s_list(node))
                    for node in protocol.nodes_with_state()
                ),
                default=0,
            )
            self.observe("interior-load", now, float(load))
        self.samples_taken += 1

    @property
    def metrics(self) -> tuple[str, ...]:
        return tuple(self._metrics)

    def buckets(self, metric: str) -> TimeBuckets:
        try:
            return self._metrics[metric]
        except KeyError:
            raise ConfigError(f"unknown timeline metric {metric!r}") from None

    def series(
        self, metric: str, stat: str = "last"
    ) -> list[tuple[float, float]]:
        """``(window_start, stat)`` pairs for one metric."""
        return self.buckets(metric).series(stat)

    def records(self) -> Iterator[dict]:
        """JSONL-ready dicts, one per (metric, window)."""
        for metric in sorted(self._metrics):
            buckets = self._metrics[metric]
            for bucket in buckets.buckets:
                yield {
                    "type": "timeline",
                    "metric": metric,
                    "start": bucket.start,
                    "end": bucket.start + buckets.width,
                    "count": bucket.count,
                    "mean": bucket.mean,
                    "min": bucket.minimum,
                    "max": bucket.maximum,
                    "last": bucket.last,
                }

    def merge(self, other: "TreeTimeline") -> "TreeTimeline":
        """Combine timelines from separate trials (same window width)."""
        if other.window != self.window:
            raise ConfigError(
                f"cannot merge windows {self.window} and {other.window}"
            )
        merged = TreeTimeline(
            self.window, max(self.max_buckets, other.max_buckets)
        )
        for source in (self, other):
            for metric, buckets in source._metrics.items():
                existing = merged._metrics.get(metric)
                if existing is None:
                    merged._metrics[metric] = buckets.merge(
                        TimeBuckets(self.window, self.max_buckets)
                    )
                else:
                    merged._metrics[metric] = existing.merge(buckets)
        merged.samples_taken = self.samples_taken + other.samples_taken
        return merged

    def __repr__(self) -> str:
        return (
            f"TreeTimeline(window={self.window}, "
            f"metrics={len(self._metrics)}, samples={self.samples_taken})"
        )


def reconstruct_series(
    records: Iterator[dict] | list[dict],
    metric: str,
    stat: str = "last",
) -> list[tuple[float, float]]:
    """Rebuild a timeline metric's series from exported JSONL records.

    The inverse of :meth:`TreeTimeline.records`, used to verify that a
    ``--telemetry-out`` file reconstructs the in-memory timeline.
    """
    pairs = [
        (record["start"], record[stat])
        for record in records
        if record.get("type") == "timeline" and record.get("metric") == metric
    ]
    return sorted(pairs)
