"""Performance metrics: hop cost ledger and query-latency recorder.

The paper reports two metrics (Section IV):

- **average query latency** — hops a request travels before reaching a
  valid index (0 for a local cache hit), and
- **average query cost** — total hops of all query-related messages
  (requests, replies, updates, interest/tree maintenance) divided by the
  number of queries.
"""

from repro.metrics.counters import CostLedger
from repro.metrics.latency import LatencyRecorder
from repro.metrics.report import MetricsReport

__all__ = ["CostLedger", "LatencyRecorder", "MetricsReport"]
