"""Performance metrics: cost ledger, latency recorder, unified registry.

The paper reports two metrics (Section IV):

- **average query latency** — hops a request travels before reaching a
  valid index (0 for a local cache hit), and
- **average query cost** — total hops of all query-related messages
  (requests, replies, updates, interest/tree maintenance) divided by the
  number of queries.

Beyond those aggregates, the package provides a unified
:class:`MetricsRegistry` (counters / gauges / histograms with periodic
snapshotting) that fronts every metric source in a run, plus JSONL
exporters for offline analysis (:mod:`repro.metrics.export`).
"""

from repro.metrics.counters import CostLedger
from repro.metrics.export import (
    export_messages,
    export_registry,
    export_traces,
    read_jsonl,
    write_jsonl,
)
from repro.metrics.latency import LatencyRecorder
from repro.metrics.registry import (
    Counter,
    FrozenMetrics,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.metrics.report import MetricsReport
from repro.metrics.windows import (
    TimeBuckets,
    TreeTimeline,
    WindowedReservoir,
    reconstruct_series,
)

__all__ = [
    "CostLedger",
    "Counter",
    "FrozenMetrics",
    "Gauge",
    "Histogram",
    "LatencyRecorder",
    "MetricsRegistry",
    "MetricsReport",
    "TimeBuckets",
    "TreeTimeline",
    "WindowedReservoir",
    "export_messages",
    "export_registry",
    "export_traces",
    "read_jsonl",
    "reconstruct_series",
    "write_jsonl",
]
