"""Query latency recording (in hops), gated on the warm-up period."""

from __future__ import annotations

from typing import Callable

from repro.stats.confidence import ConfidenceInterval, batch_means_interval
from repro.stats.running import RunningStat, percentile


class LatencyRecorder:
    """Accumulates per-query request latencies measured in hops.

    A query served from the local cache has latency 0; otherwise latency is
    the number of hops the request travelled before reaching the first node
    holding a valid index (replies do not add latency — they add cost).

    Parameters
    ----------
    clock:
        Returns current simulation time; used to apply the warm-up gate at
        *query issue time*.
    warmup:
        Queries issued before this time are ignored.
    keep_samples:
        Whether to retain individual latencies (needed for batch-means
        confidence intervals; costs one float per query).
    """

    def __init__(
        self,
        clock: Callable[[], float],
        warmup: float = 0.0,
        keep_samples: bool = True,
    ):
        self._clock = clock
        self._warmup = float(warmup)
        self._keep_samples = keep_samples
        self._stat = RunningStat()
        self._samples: list[float] = []
        self._hits = 0
        self._warmup_queries = 0

    def record(self, latency_hops: float, issued_at: float) -> None:
        """Record one completed query.

        Parameters
        ----------
        latency_hops:
            Request hops until a valid index was reached.
        issued_at:
            Simulation time the query was issued (for the warm-up gate).
        """
        if latency_hops < 0:
            raise ValueError(f"latency must be non-negative: {latency_hops}")
        if issued_at < self._warmup:
            self._warmup_queries += 1
            return
        self._stat.add(latency_hops)
        if latency_hops == 0:
            self._hits += 1
        if self._keep_samples:
            self._samples.append(latency_hops)

    @property
    def count(self) -> int:
        """Completed post-warm-up queries."""
        return self._stat.count

    @property
    def warmup_queries(self) -> int:
        """Queries discarded by the warm-up gate."""
        return self._warmup_queries

    @property
    def mean(self) -> float:
        """Average query latency in hops."""
        return self._stat.mean

    @property
    def hits(self) -> int:
        """Queries served from the local cache (latency 0).

        Exposed as a raw count so sharded runs can merge recorders
        exactly (a merged hit rate needs the numerators, not the
        per-shard ratios).
        """
        return self._hits

    @property
    def total_hops(self) -> float:
        """Sum of recorded latencies (for exact cross-shard merging)."""
        return self._stat.mean * self._stat.count if self._stat.count else 0.0

    @property
    def hit_rate(self) -> float:
        """Fraction of queries served from the local cache."""
        if self._stat.count == 0:
            return float("nan")
        return self._hits / self._stat.count

    @property
    def maximum(self) -> float:
        """Worst observed latency."""
        return self._stat.maximum

    def confidence_interval(
        self, confidence: float = 0.95, batches: int = 20
    ) -> ConfidenceInterval:
        """Batch-means CI over the recorded latencies.

        Requires ``keep_samples=True``; the paper runs each simulation
        until a 95 % CI of the latency is obtained.
        """
        if not self._keep_samples:
            raise RuntimeError("samples were not kept; CI unavailable")
        return batch_means_interval(self._samples, batches, confidence)

    def percentile(self, q: float) -> float:
        """The ``q``-th latency percentile (requires ``keep_samples``).

        Returns ``nan`` when no samples were recorded.
        """
        if not self._keep_samples:
            raise RuntimeError("samples were not kept; percentile unavailable")
        return percentile(self._samples, q)

    def percentiles(self, qs=(50, 95, 99)) -> dict[str, float]:
        """Tail percentiles keyed ``"p50"``-style (requires samples)."""
        return {f"p{q:g}": self.percentile(q) for q in qs}

    @property
    def samples(self) -> tuple[float, ...]:
        """The raw recorded latencies (post-warm-up only)."""
        return tuple(self._samples)

    def __repr__(self) -> str:
        return (
            f"LatencyRecorder(count={self.count}, mean={self.mean:.4g}, "
            f"hit_rate={self.hit_rate:.3g})"
        )
