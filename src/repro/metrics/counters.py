"""Hop-count ledger charged by the transport, gated on a warm-up period.

Measurements only start after the warm-up (caches and interest state need
one TTL cycle to reach steady state); the paper's very long runs make
warm-up negligible, but our scaled benchmark runs do not.
"""

from __future__ import annotations

from typing import Callable, Mapping

from repro.net.message import Category


class CostLedger:
    """Per-category hop counters for the average-query-cost metric.

    Parameters
    ----------
    clock:
        Zero-argument callable returning the current simulation time
        (usually ``lambda: env.now``).
    warmup:
        Hops charged before this time are tallied separately and excluded
        from the reported cost.
    count_keepalive:
        Whether keep-alive hops count toward query cost.  The paper's
        metric covers "query related messages"; keep-alives are part of
        the underlying overlay maintenance and are identical across
        schemes, so they are excluded by default (but still tracked).
    """

    def __init__(
        self,
        clock: Callable[[], float],
        warmup: float = 0.0,
        count_keepalive: bool = False,
    ):
        self._clock = clock
        self._warmup = float(warmup)
        self._count_keepalive = count_keepalive
        self._hops: dict[Category, int] = {cat: 0 for cat in Category}
        self._warmup_hops: dict[Category, int] = {cat: 0 for cat in Category}
        # Latched once the clock passes the warm-up: simulation time only
        # moves forward, so later charges skip the clock call entirely.
        self._warm = self._warmup <= 0.0

    def charge(self, category: Category, hops: int = 1) -> None:
        """Add ``hops`` to ``category`` (warm-up hops kept separate)."""
        if hops < 0:
            raise ValueError(f"hops must be non-negative, got {hops}")
        if self._warm:
            self._hops[category] += hops
        elif self._clock() < self._warmup:
            self._warmup_hops[category] += hops
        else:
            self._warm = True
            self._hops[category] += hops

    def hops(self, category: Category) -> int:
        """Post-warm-up hops charged to ``category``."""
        return self._hops[category]

    def warmup_hops(self, category: Category) -> int:
        """Hops charged during warm-up (excluded from cost)."""
        return self._warmup_hops[category]

    @property
    def total_hops(self) -> int:
        """Total post-warm-up hops that count toward query cost."""
        total = 0
        for category, hops in self._hops.items():
            if category is Category.KEEPALIVE and not self._count_keepalive:
                continue
            total += hops
        return total

    def breakdown(self) -> Mapping[str, int]:
        """Post-warm-up hops by category name (for reports)."""
        return {cat.value: hops for cat, hops in self._hops.items()}

    def cost_per_query(self, queries: int) -> float:
        """The paper's average query cost: total hops / queries."""
        if queries <= 0:
            return float("nan")
        return self.total_hops / queries

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{cat.value}={hops}" for cat, hops in self._hops.items() if hops
        )
        return f"CostLedger({parts or 'empty'})"
