"""Structured JSONL export of traces, registry snapshots, and events.

One JSON object per line, each tagged with a ``"type"`` discriminator so
mixed streams stay self-describing:

- ``{"type": "trace", ...}`` — one reconstructed query trace (see
  :meth:`repro.engine.tracing.QueryTrace.to_dict` and
  ``docs/observability.md`` for the full schema);
- ``{"type": "snapshot", "time": ..., "values": {...}}`` — one metrics
  registry snapshot;
- ``{"type": "message", ...}`` — one delivered message from a
  :class:`repro.engine.tracing.MessageLog`.

Everything is plain ``json.dumps``-able (ints, floats, strings, None);
``nan``/``inf`` are serialized as ``null`` so any JSON reader can load
the output.
"""

from __future__ import annotations

import json
import math
from typing import TYPE_CHECKING, Iterable, Iterator, Mapping, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.tracing import MessageLog, TraceCollector
    from repro.metrics.registry import MetricsRegistry


def _clean(value):
    """Replace non-finite floats with None, recursively."""
    if isinstance(value, float) and not math.isfinite(value):
        return None
    if isinstance(value, dict):
        return {key: _clean(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_clean(item) for item in value]
    return value


def write_jsonl(path: str, records: Iterable[Mapping]) -> int:
    """Write ``records`` to ``path``, one JSON object per line.

    Returns the number of lines written.
    """
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(_clean(dict(record)), sort_keys=True))
            handle.write("\n")
            count += 1
    return count


def read_jsonl(path: str) -> list[dict]:
    """Load every record of a JSONL file (inverse of :func:`write_jsonl`)."""
    records = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def trace_records(
    collector: "TraceCollector", status: Optional[str] = None
) -> Iterator[dict]:
    """Yield the collector's retained traces as JSONL-ready dicts."""
    for trace in collector.traces(status):
        yield trace.to_dict()


def export_traces(
    collector: "TraceCollector",
    path: str,
    status: Optional[str] = None,
) -> int:
    """Dump retained traces to ``path`` (one trace per line).

    ``status`` filters to ``"complete"`` / ``"incomplete"`` / ``"open"``
    traces; by default every retained trace is written.  Returns the
    number of traces written.
    """
    return write_jsonl(path, trace_records(collector, status))


def registry_records(registry: "MetricsRegistry") -> Iterator[dict]:
    """Yield the registry's snapshots (or one current snapshot if none
    were recorded) as JSONL-ready dicts.

    Accepts either a live :class:`~repro.metrics.registry.MetricsRegistry`
    or a :class:`~repro.metrics.registry.FrozenMetrics` (e.g. the merged
    payload of a parallel sweep) — both expose ``snapshots`` and
    ``snapshot()``."""
    snapshots = registry.snapshots or (registry.snapshot(),)
    for snapshot in snapshots:
        yield {"type": "snapshot", **snapshot}


def export_registry(registry: "MetricsRegistry", path: str) -> int:
    """Dump the registry's snapshot series to ``path``.

    Falls back to a single current snapshot when periodic snapshotting
    was not enabled.  Returns the number of snapshots written.
    """
    return write_jsonl(path, registry_records(registry))


def message_records(log: "MessageLog") -> Iterator[dict]:
    """Yield a message log's retained entries as JSONL-ready dicts."""
    for entry in log:
        yield {
            "type": "message",
            "time": entry.time,
            "destination": entry.destination,
            "category": entry.category,
            "kind": entry.kind,
            "detail": entry.detail,
        }


def export_messages(log: "MessageLog", path: str) -> int:
    """Dump a message log to ``path`` (one delivery per line)."""
    return write_jsonl(path, message_records(log))
