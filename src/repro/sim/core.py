"""Core of the discrete-event simulation kernel.

The design follows the classic event-list architecture: a binary heap of
``(time, priority, sequence, event)`` tuples.  Ties at equal time are broken
first by priority (lower runs first) and then by scheduling order, which
makes runs fully deterministic.

Processes are Python generators.  A process yields an :class:`Event`; when
that event triggers, the kernel resumes the generator, sending the event's
value in (or throwing the event's exception).  A :class:`Process` is itself
an event, so processes can wait on each other.

Hot-path notes
--------------
The dominant cycle in every experiment is "schedule timeout -> pop ->
resume one generator".  The kernel therefore carries a few fast paths,
all bit-identical to the straightforward implementations (event order,
clock values, and RNG draw order are unchanged):

- ``heappush``/``heappop`` are imported as locals instead of attribute
  lookups on the :mod:`heapq` module;
- :class:`Timeout` construction is flattened (no ``super().__init__``
  chain, the heap push is inlined);
- :meth:`Environment.call_later` callbacks are :class:`_Invoke` records
  instead of closure objects;
- when :mod:`repro.fastpath` is enabled (the default), :meth:`Environment.run`
  uses an inlined event loop and recycles value-less :class:`Timeout`
  events through a small free list.  Only events whose sole callback is
  kernel-owned (a :class:`Process` resume or an :class:`_Invoke`) are
  recycled, so any event a caller might still hold a reference to —
  condition members, interrupted targets, timeouts carrying values —
  is never reused;
- when batched dispatch is additionally enabled (``REPRO_BATCH``, the
  default), the run loop drains all events sharing one timestamp as a
  single batch: the stop-time/stop-event head checks and the clock
  assignment are hoisted to the tick boundary, and the inner loop walks
  the batch with one float comparison per event instead of the full
  ``(time, priority, sequence)`` tuple discipline.  Batched
  environments also accept :meth:`Environment.defer` — fire-and-forget
  work flattened straight into the heap entry (one tuple, no event
  object), skipping the :class:`Timeout`/callback machinery entirely
  (the transport's delivery hot path uses this).  Batch order is provably
  identical to the serial pops: entries still live in the one heap, so
  same-tick events run in exactly the (priority, sequence) order the
  plain loop would pop them in.
"""

from __future__ import annotations

from heapq import heappush, heappop
from typing import Any, Callable, Generator, Iterable, Optional

from repro import fastpath
from repro.errors import ProcessError, SchedulingError, SimulationError

#: Priority used for ordinary events.
NORMAL = 1
#: Priority used for urgent bookkeeping events (run before NORMAL at a tick).
URGENT = 0

_PENDING = object()

#: Upper bound on the Timeout free list (per environment).
_POOL_CAP = 1024


class Event:
    """A one-shot event that may succeed with a value or fail with an error.

    Callbacks receive the event as their only argument once it triggers.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_scheduled", "_defused")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok: bool = True
        self._scheduled = False
        self._defused = False

    # -- state ----------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """Whether the event has been scheduled to fire (value decided)."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """Whether callbacks have already run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """Whether the event succeeded.  Only valid once triggered."""
        if not self.triggered:
            raise SimulationError("event value not yet available")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or exception when it failed)."""
        if self._value is _PENDING:
            raise SimulationError("event value not yet available")
        return self._value

    # -- triggering -----------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self.triggered:
            raise SchedulingError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.env._schedule(self, NORMAL)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed with ``exception``."""
        if self.triggered:
            raise SchedulingError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        self._ok = False
        self._value = exception
        self.env._schedule(self, NORMAL)
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger this event with the state of another (callback helper)."""
        if event._ok:
            self.succeed(event._value)
        else:
            self.fail(event._value)

    # -- misc -----------------------------------------------------------
    def defuse(self) -> None:
        """Mark a failed event as handled so it does not halt the run."""
        self._defused = True

    def __repr__(self) -> str:
        state = "triggered" if self.triggered else "pending"
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires ``delay`` time units after creation."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise SchedulingError(f"negative timeout delay {delay!r}")
        # Flattened Event.__init__ + _schedule: this constructor runs a
        # quarter of a million times per quick-scale experiment.
        self.env = env
        self.callbacks = []
        self._ok = True
        self._value = value
        self._scheduled = True
        self._defused = False
        self.delay = delay = float(delay)
        heappush(env._queue, (env._now + delay, NORMAL, env._eid, self))
        env._eid += 1

    def __repr__(self) -> str:
        return f"<Timeout delay={self.delay}>"


class _Invoke:
    """Kernel-owned ``call_later`` callback: calls ``fn(*args)``.

    A tagged record instead of a closure so the run loop can recognise
    fire-and-forget deliveries and recycle their carrier timeouts.
    """

    __slots__ = ("fn", "args")

    def __init__(self, fn: Callable, args: tuple) -> None:
        self.fn = fn
        self.args = args

    def __call__(self, _event: Event) -> None:
        self.fn(*self.args)


# Deferred entries (see Environment.defer) are flattened straight into
# the heap tuple: ``(time, priority, sequence, fn, args)`` — one
# allocation per record, distinguished from ``(time, priority,
# sequence, event)`` entries by tuple length alone.  Mixing lengths in
# one heap is safe because the ``sequence`` field is unique, so tuple
# comparison never reaches index 3.


class Initialize(Event):
    """Internal event that starts a newly created process."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process"):
        super().__init__(env)
        self.callbacks = [process._resume]
        self._ok = True
        self._value = None
        env._schedule(self, URGENT)


class Interrupt(Exception):
    """Thrown into a process when :meth:`Process.interrupt` is called."""

    @property
    def cause(self) -> Any:
        """The cause passed to :meth:`Process.interrupt`."""
        return self.args[0]


class _InterruptEvent(Event):
    """Internal immediate event used to deliver an interrupt."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process", cause: Any):
        super().__init__(env)
        self.callbacks = [process._resume]
        self._ok = False
        self._value = Interrupt(cause)
        self._defused = True
        env._schedule(self, URGENT)


class Process(Event):
    """A running simulation process wrapping a generator.

    The process is an event that triggers when the generator finishes; its
    value is the generator's return value.
    """

    __slots__ = ("_generator", "_target", "name")

    def __init__(
        self,
        env: "Environment",
        generator: Generator[Event, Any, Any],
        name: str = "",
    ):
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise ProcessError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        self._target: Optional[Event] = None
        self.name = name or getattr(generator, "__name__", "process")
        Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        """Whether the underlying generator has not yet finished."""
        return self._value is _PENDING

    @property
    def target(self) -> Optional[Event]:
        """The event this process is currently waiting for."""
        return self._target

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if not self.is_alive:
            raise SchedulingError(f"{self!r} has terminated; cannot interrupt")
        if self is self.env.active_process:
            raise SchedulingError("a process cannot interrupt itself")
        # Detach from the event currently waited on; the interrupt event
        # resumes the process instead (the stale event must not resume the
        # process a second time when it eventually fires).
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:  # pragma: no cover - defensive
                pass
        self._target = None
        _InterruptEvent(self.env, self, cause)

    def _resume(self, event: Event) -> None:
        """Advance the generator with ``event``'s outcome."""
        if self._value is not _PENDING:  # pragma: no cover - defensive
            return
        env = self.env
        env._active_process = self
        generator = self._generator
        while True:
            try:
                if event._ok:
                    next_target = generator.send(event._value)
                else:
                    event._defused = True
                    next_target = generator.throw(event._value)
            except StopIteration as stop:
                self._finish(True, stop.value)
                break
            except BaseException as error:
                self._finish(False, error)
                break

            if isinstance(next_target, Event):
                if next_target.env is env:
                    if next_target.callbacks is None:
                        # Already processed: resume immediately with its value.
                        event = next_target
                        continue
                    next_target.callbacks.append(self._resume)
                    self._target = next_target
                    break
                self._finish(
                    False,
                    ProcessError(
                        f"process {self.name!r} yielded event from a foreign "
                        "environment"
                    ),
                )
                generator.close()
                break
            self._finish(
                False,
                ProcessError(
                    f"process {self.name!r} yielded non-event "
                    f"{next_target!r}"
                ),
            )
            generator.close()
            break
        env._active_process = None

    def _finish(self, ok: bool, value: Any) -> None:
        self._target = None
        self._ok = ok
        self._value = value
        self.env._schedule(self, NORMAL)

    def __repr__(self) -> str:
        return f"<Process {self.name!r} {'alive' if self.is_alive else 'done'}>"


#: The unbound resume used to recognise kernel-owned callbacks in the
#: fast run loop (``bound.__func__ is _PROCESS_RESUME``).
_PROCESS_RESUME = Process._resume


class _Condition(Event):
    """Base for AnyOf / AllOf composition events."""

    __slots__ = ("_events", "_count")

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self._events = list(events)
        self._count = 0
        for event in self._events:
            if event.env is not env:
                raise SimulationError("cannot mix events of different environments")
        if not self._events:
            self.succeed(self._collect())
            return
        for event in self._events:
            if event.processed:
                self._check(event)
            else:
                event.callbacks.append(self._check)

    def _collect(self) -> dict[Event, Any]:
        return {
            event: event._value
            for event in self._events
            if event.triggered and event._ok
        }

    def _check(self, event: Event) -> None:
        raise NotImplementedError

    def _maybe_fail(self, event: Event) -> bool:
        if not event._ok:
            event._defused = True
            if not self.triggered:
                self.fail(event._value)
            return True
        return False


class AnyOf(_Condition):
    """Triggers as soon as any of the given events triggers."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if self._maybe_fail(event):
            return
        self.succeed(self._collect())


class AllOf(_Condition):
    """Triggers once all of the given events have triggered."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if self._maybe_fail(event):
            return
        self._count += 1
        if self._count == len(self._events):
            self.succeed(self._collect())


class Environment:
    """The simulation environment: virtual clock plus event loop.

    Parameters
    ----------
    initial_time:
        Starting value of the clock (defaults to ``0.0``).

    The :mod:`repro.fastpath` flags are captured at construction: an
    environment created while the fast paths are enabled uses the inlined
    run loop and the :class:`Timeout` free list for its whole lifetime,
    and one created while batched dispatch is also enabled uses the
    same-tick batch loop and accepts zero-allocation :meth:`defer`
    records.
    """

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        # 4-tuples carry Events; 5-tuples (batched mode only) carry
        # flat (fn, args) deferred records.
        self._queue: list[tuple] = []
        self._eid = 0
        self._active_process: Optional[Process] = None
        self._fast = fastpath.ENABLED
        self._batched = self._fast and fastpath.BATCHED
        self._timeout_pool: list[Timeout] = []

    # -- properties -------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_process

    @property
    def queue_size(self) -> int:
        """Number of scheduled (not yet processed) events."""
        return len(self._queue)

    # -- event factories ---------------------------------------------------
    def event(self) -> Event:
        """Create a new untriggered :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires after ``delay`` time units."""
        if value is None and self._fast:
            pool = self._timeout_pool
            if pool:
                if delay < 0:
                    raise SchedulingError(f"negative timeout delay {delay!r}")
                event = pool.pop()
                event.callbacks = []
                event._ok = True
                event._value = None
                event._defused = False
                event.delay = delay = float(delay)
                heappush(
                    self._queue, (self._now + delay, NORMAL, self._eid, event)
                )
                self._eid += 1
                return event
        return Timeout(self, delay, value)

    def process(
        self, generator: Generator[Event, Any, Any], name: str = ""
    ) -> Process:
        """Start a new process running ``generator``."""
        return Process(self, generator, name=name)

    def call_later(self, delay: float, function: Callable, *args) -> Timeout:
        """Schedule ``function(*args)`` to run after ``delay`` time units.

        A lightweight alternative to spawning a process for fire-and-forget
        work such as message deliveries.
        """
        timeout = self.timeout(delay)
        timeout.callbacks.append(_Invoke(function, args))
        return timeout

    def defer(self, delay: float, function: Callable, *args) -> None:
        """Fire-and-forget :meth:`call_later` with no event handle.

        In a batched environment the call is flattened straight into
        the heap entry — no :class:`Timeout`, no callbacks list, no
        record object — occupying the same ``(time, NORMAL, sequence)``
        slot the timeout would have, so dispatch order is unchanged.  Outside
        batched mode it falls back to :meth:`call_later` (discarding
        the handle), keeping the two paths bit-identical.
        """
        if self._batched:
            if delay < 0:
                raise SchedulingError(f"negative timeout delay {delay!r}")
            heappush(
                self._queue,
                (self._now + delay, NORMAL, self._eid, function, args),
            )
            self._eid += 1
            return
        self.call_later(delay, function, *args)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event triggering when any of ``events`` does."""
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event triggering when all of ``events`` have."""
        return AllOf(self, events)

    # -- scheduling ---------------------------------------------------------
    def _schedule(self, event: Event, priority: int, delay: float = 0.0) -> None:
        if delay < 0:
            raise SchedulingError(f"cannot schedule {event!r} in the past")
        event._scheduled = True
        heappush(self._queue, (self._now + delay, priority, self._eid, event))
        self._eid += 1

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process exactly one event."""
        if not self._queue:
            raise SimulationError("no scheduled events")
        entry = heappop(self._queue)
        self._now = entry[0]
        if len(entry) == 5:
            # Deferred record — possible only in a batched environment
            # whose events are being stepped manually; semantics match
            # the batch loop.
            entry[3](*entry[4])
            return
        event = entry[3]
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)
        if not event._ok and not event._defused:
            value = event._value
            if isinstance(value, BaseException):
                raise value
            raise SimulationError(f"unhandled event failure: {value!r}")

    def run(self, until: Optional[float | Event] = None) -> Any:
        """Run until the given time, event, or event-queue exhaustion.

        Parameters
        ----------
        until:
            ``None`` runs until no events remain.  A number runs until the
            clock reaches it.  An :class:`Event` runs until that event has
            been processed and returns its value.
        """
        stop_event: Optional[Event] = None
        stop_time = float("inf")
        if isinstance(until, Event):
            stop_event = until
            if stop_event.processed:
                return stop_event.value
        elif until is not None:
            stop_time = float(until)
            if stop_time < self._now:
                raise SchedulingError(
                    f"until={stop_time} lies in the past (now={self._now})"
                )

        queue = self._queue
        if self._batched:
            # Batched dispatch: all events sharing the head timestamp are
            # drained as one batch.  The stop-time check and the clock
            # assignment run once per tick; the inner loop needs only a
            # float equality per event (entries still come off the one
            # heap, so same-tick order is exactly the plain loop's
            # (priority, sequence) order).  Flat deferred records —
            # fire-and-forget deliveries — bypass the event machinery.
            pool = self._timeout_pool
            while queue:
                if stop_event is not None and stop_event.callbacks is None:
                    return stop_event.value
                tick = queue[0][0]
                if tick > stop_time:
                    self._now = stop_time
                    return None
                self._now = tick
                while queue and queue[0][0] == tick:
                    entry = heappop(queue)
                    if len(entry) == 5:
                        entry[3](*entry[4])
                        continue
                    event = entry[3]
                    callbacks = event.callbacks
                    event.callbacks = None
                    for callback in callbacks:
                        callback(event)
                    if event._ok:
                        if (
                            type(event) is Timeout
                            and event._value is None
                            and len(callbacks) == 1
                            and len(pool) < _POOL_CAP
                        ):
                            callback = callbacks[0]
                            if (
                                type(callback) is _Invoke
                                or getattr(callback, "__func__", None)
                                is _PROCESS_RESUME
                            ):
                                event._value = _PENDING
                                pool.append(event)
                    elif not event._defused:
                        value = event._value
                        if isinstance(value, BaseException):
                            raise value
                        raise SimulationError(
                            f"unhandled event failure: {value!r}"
                        )
                    if (
                        stop_event is not None
                        and stop_event.callbacks is None
                    ):
                        return stop_event.value
        elif self._fast:
            # Inlined step() loop: localised heap ops, direct slot reads,
            # and Timeout recycling.  Event order, clock values, and every
            # raise are identical to the plain loop below.
            pool = self._timeout_pool
            while queue:
                if stop_event is not None and stop_event.callbacks is None:
                    return stop_event.value
                if queue[0][0] > stop_time:
                    self._now = stop_time
                    return None
                self._now, _, _, event = heappop(queue)
                callbacks = event.callbacks
                event.callbacks = None
                for callback in callbacks:
                    callback(event)
                if event._ok:
                    # Recycle the dominant event shape: a value-less
                    # Timeout whose only callback was kernel-owned (a
                    # process resume or a call_later delivery) — nothing
                    # else can still hold a reference to it.
                    if (
                        type(event) is Timeout
                        and event._value is None
                        and len(callbacks) == 1
                        and len(pool) < _POOL_CAP
                    ):
                        callback = callbacks[0]
                        if (
                            type(callback) is _Invoke
                            or getattr(callback, "__func__", None)
                            is _PROCESS_RESUME
                        ):
                            event._value = _PENDING
                            pool.append(event)
                elif not event._defused:
                    value = event._value
                    if isinstance(value, BaseException):
                        raise value
                    raise SimulationError(
                        f"unhandled event failure: {value!r}"
                    )
        else:
            while queue:
                if stop_event is not None and stop_event.processed:
                    return stop_event.value
                if self.peek() > stop_time:
                    self._now = stop_time
                    return None
                self.step()

        if stop_event is not None:
            if stop_event.processed:
                return stop_event.value
            raise SimulationError(
                "event queue exhausted before the awaited event triggered"
            )
        if stop_time != float("inf"):
            self._now = stop_time
        return None

    def __repr__(self) -> str:
        return f"<Environment now={self._now} queued={len(self._queue)}>"
