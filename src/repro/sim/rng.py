"""Named, independently seeded random-number streams.

Stochastic simulations need *common random numbers* across compared
configurations: the arrival process must see the same randomness whether the
scheme under test is PCX, CUP, or DUP.  :class:`RandomStreams` derives one
independent :class:`numpy.random.Generator` per named purpose ("arrivals",
"topology", "latency", ...) from a single root seed, so that changing how
one stream is consumed never perturbs the others.
"""

from __future__ import annotations

import numpy as np


class RandomStreams:
    """A family of independent random generators derived from one seed.

    Streams are created lazily by name.  The same ``(seed, name)`` pair
    always produces an identical stream, which makes every simulation run
    reproducible and lets compared schemes share workload randomness.

    Example
    -------
    >>> streams = RandomStreams(seed=42)
    >>> a = streams.get("arrivals")
    >>> b = streams.get("topology")
    >>> a is streams.get("arrivals")
    True
    """

    def __init__(self, seed: int = 0):
        if not isinstance(seed, (int, np.integer)):
            raise TypeError(f"seed must be an integer, got {seed!r}")
        self._seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        """The root seed this family was created from."""
        return self._seed

    def get(self, name: str) -> np.random.Generator:
        """Return (creating if needed) the stream for ``name``."""
        stream = self._streams.get(name)
        if stream is None:
            sequence = np.random.SeedSequence(
                self._seed, spawn_key=(_stable_hash(name),)
            )
            stream = np.random.Generator(np.random.PCG64(sequence))
            self._streams[name] = stream
        return stream

    def spawn(self, offset: int) -> "RandomStreams":
        """A new family for a replication, offset from the root seed."""
        return RandomStreams(self._seed + int(offset))

    @classmethod
    def for_trial(
        cls,
        root_seed: int,
        replication: int,
        experiment: str = "",
        point: object = None,
    ) -> "RandomStreams":
        """The stream family for one ``(experiment, point, replication)``
        trial (see :func:`derive_trial_seed`)."""
        return cls(
            derive_trial_seed(
                root_seed, replication, experiment=experiment, point=point
            )
        )

    def __repr__(self) -> str:
        return (
            f"RandomStreams(seed={self._seed}, "
            f"streams={sorted(self._streams)})"
        )


def derive_trial_seed(
    root_seed: int,
    replication: int,
    experiment: str = "",
    point: object = None,
) -> int:
    """The root seed of one trial's :class:`RandomStreams` family.

    This is the single place the engine turns a configuration's root seed
    into a per-trial seed, so the serial and multiprocess runners agree
    bit-for-bit: a trial's randomness depends only on the derived seed,
    never on which worker executes it or in what order.

    With the default empty key (``experiment=""``, ``point=None``) the
    derivation is the historical ``root_seed + replication`` rule, which
    keeps *common random numbers* across compared schemes (the runner
    varies only ``config.scheme`` between paired runs) and preserves every
    previously published number.  Supplying ``experiment``/``point``
    decorrelates sweep points by mixing a stable hash of the key into the
    seed — useful when independent points must not share workload
    randomness.  Either way, the per-purpose named streams ("arrivals",
    "topology", "faults", ...) are then spawned independently from the
    derived seed by :class:`RandomStreams`, so the fault-injection streams
    introduced with the resilience layer stay decoupled from the workload
    streams within each trial.
    """
    base = int(root_seed) + int(replication)
    if not experiment and point is None:
        return base
    key = f"{experiment}\x1f{point!r}"
    return (base + _stable_hash(key)) % (2**63 - 1)


def _stable_hash(name: str) -> int:
    """A deterministic 63-bit hash of ``name`` (``hash()`` is salted)."""
    value = 0
    for char in name.encode("utf-8"):
        value = (value * 131 + char) % (2**63 - 1)
    return value
