"""Discrete-event simulation kernel.

A small, dependency-free, simpy-like kernel.  Simulation *processes* are
Python generators that ``yield`` events; the :class:`Environment` advances
virtual time by popping the earliest scheduled event from a binary heap and
resuming every process waiting on it.

The kernel is deliberately minimal but complete for this project's needs:

- :class:`Environment` — the clock and event loop.
- :class:`Event` — one-shot triggerable event with callbacks and a value.
- :class:`Timeout` — an event that fires after a delay.
- :class:`Process` — wraps a generator; itself an event that fires when the
  generator returns (its value is the generator's return value).
- :class:`Interrupt` — exception thrown into an interrupted process.
- :class:`AnyOf` / :class:`AllOf` — event composition.

Example
-------
>>> from repro.sim import Environment
>>> env = Environment()
>>> log = []
>>> def proc(env):
...     yield env.timeout(5)
...     log.append(env.now)
>>> _ = env.process(proc(env))
>>> env.run()
>>> log
[5.0]
"""

from repro.sim.core import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    Process,
    Timeout,
)
from repro.sim.monitor import Monitor, Series
from repro.sim.rng import RandomStreams

__all__ = [
    "AllOf",
    "AnyOf",
    "Environment",
    "Event",
    "Interrupt",
    "Monitor",
    "Process",
    "RandomStreams",
    "Series",
    "Timeout",
]
