"""Time-series probes for simulations.

A :class:`Monitor` samples named quantities on a fixed cadence (one
simulation process per monitor) and stores `(time, value)` series; probes
are plain callables, so anything reachable from the engine — subscriber
counts, hit rates, cache occupancy, DUP-tree size — can be observed
without touching the measured code.

The engine exposes this through
``Simulation.add_probe(name, fn, interval)``; the experiments use it for
the convergence plots and the test-suite for temporal assertions (e.g.
"the subscriber count stabilizes after the first TTL").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, Optional

from repro.errors import ConfigError
from repro.sim.core import Environment

Probe = Callable[[], float]


@dataclass(frozen=True)
class Sample:
    """One observation of a probed quantity."""

    time: float
    value: float


class Series:
    """An append-only time series with simple summaries.

    ``max_samples`` bounds retention: when set, only the most recent
    ``max_samples`` observations are kept (a sliding window), so a
    probe sampled every few seconds of a week-long run stays
    fixed-memory.  ``total_appended`` counts every observation ever
    made, retained or not.  ``None`` keeps everything (the historical
    behaviour).
    """

    __slots__ = ("name", "max_samples", "total_appended", "_times", "_values")

    def __init__(self, name: str, max_samples: Optional[int] = None):
        if max_samples is not None and max_samples < 1:
            raise ConfigError(
                f"max_samples must be positive, got {max_samples}"
            )
        self.name = name
        self.max_samples = max_samples
        self.total_appended = 0
        self._times: list[float] = []
        self._values: list[float] = []

    def append(self, time: float, value: float) -> None:
        """Record one sample (times must be non-decreasing)."""
        if self._times and time < self._times[-1]:
            raise ConfigError(
                f"samples must be time-ordered: {time} < {self._times[-1]}"
            )
        self._times.append(float(time))
        self._values.append(float(value))
        self.total_appended += 1
        if self.max_samples is not None and len(self._times) > self.max_samples:
            excess = len(self._times) - self.max_samples
            del self._times[:excess]
            del self._values[:excess]

    @property
    def times(self) -> tuple[float, ...]:
        """Sample times."""
        return tuple(self._times)

    @property
    def values(self) -> tuple[float, ...]:
        """Sample values."""
        return tuple(self._values)

    def __len__(self) -> int:
        return len(self._times)

    def __iter__(self) -> Iterator[Sample]:
        return (
            Sample(t, v) for t, v in zip(self._times, self._values)
        )

    @property
    def last(self) -> Optional[Sample]:
        """The most recent sample, if any."""
        if not self._times:
            return None
        return Sample(self._times[-1], self._values[-1])

    def window(self, start: float, end: float) -> "Series":
        """The sub-series with ``start <= time <= end``."""
        clipped = Series(self.name, max_samples=self.max_samples)
        for time, value in zip(self._times, self._values):
            if start <= time <= end:
                clipped.append(time, value)
        return clipped

    def mean(self) -> float:
        """Unweighted mean of the sampled values (``nan`` when empty)."""
        if not self._values:
            return float("nan")
        return sum(self._values) / len(self._values)

    def minimum(self) -> float:
        """Smallest sample (``nan`` when empty)."""
        return min(self._values) if self._values else float("nan")

    def maximum(self) -> float:
        """Largest sample (``nan`` when empty)."""
        return max(self._values) if self._values else float("nan")

    def is_stable(self, last_fraction: float = 0.5, tolerance: float = 0.1) -> bool:
        """Whether the trailing ``last_fraction`` of samples varies by at
        most ``tolerance`` relative to its mean (convergence heuristic)."""
        if len(self._values) < 4:
            return False
        tail = self._values[int(len(self._values) * (1 - last_fraction)) :]
        center = sum(tail) / len(tail)
        if center == 0:
            return max(abs(v) for v in tail) <= tolerance
        return all(abs(v - center) <= tolerance * abs(center) for v in tail)

    def __repr__(self) -> str:
        return f"Series({self.name!r}, samples={len(self)})"


class Monitor:
    """Samples registered probes on a fixed simulated-time cadence.

    Parameters
    ----------
    env:
        The simulation environment.
    interval:
        Seconds of simulated time between samples.
    start_at:
        Time of the first sample (defaults to one interval in).
    max_samples:
        Retention bound for every created series (sliding window of
        the most recent samples).  Defaults to 4096; pass ``None`` for
        the old unbounded behaviour.
    """

    DEFAULT_MAX_SAMPLES = 4096

    def __init__(
        self,
        env: Environment,
        interval: float,
        start_at: Optional[float] = None,
        max_samples: Optional[int] = DEFAULT_MAX_SAMPLES,
    ):
        if interval <= 0:
            raise ConfigError(f"interval must be positive, got {interval}")
        self._env = env
        self._interval = float(interval)
        self._start_at = float(start_at if start_at is not None else interval)
        self._max_samples = max_samples
        self._probes: dict[str, Probe] = {}
        self._series: dict[str, Series] = {}
        self._started = False

    def probe(self, name: str, function: Probe) -> Series:
        """Register a probe; returns its (live) series."""
        if name in self._probes:
            raise ConfigError(f"probe {name!r} already registered")
        self._probes[name] = function
        series = Series(name, max_samples=self._max_samples)
        self._series[name] = series
        if not self._started:
            self._started = True
            self._env.process(self._sampling_loop(), name="monitor")
        return series

    def series(self, name: str) -> Series:
        """The series recorded for ``name``."""
        try:
            return self._series[name]
        except KeyError:
            raise ConfigError(f"unknown probe {name!r}") from None

    @property
    def names(self) -> tuple[str, ...]:
        """All registered probe names."""
        return tuple(self._series)

    def sample_now(self) -> None:
        """Take one sample of every probe immediately."""
        now = self._env.now
        for name, function in self._probes.items():
            self._series[name].append(now, float(function()))

    def _sampling_loop(self):
        delay = max(0.0, self._start_at - self._env.now)
        yield self._env.timeout(delay)
        while True:
            self.sample_now()
            yield self._env.timeout(self._interval)
