"""Subscriber-load balancing for fanout-capped DUP trees (``dup-balanced``).

PR 7's overload layer lets a capped interior node *refuse* a fresh
subscriber: the subscribe is redirected to the parent and the subject is
NACKed — load moves up, concentrating on the ancestors.  This module
turns the refusal into a *split*: the capped node hands the subscriber to
its best-ranked existing subscriber-list entry, which becomes a relay for
it.  Load moves **down**, the DUP tree widens, and the cap becomes a true
per-node bound instead of a pressure valve (the D3-Tree idea adapted to
the paper's subscriber lists).

:class:`DupBalancer` is a pure state machine over a
:class:`~repro.core.protocol.DupProtocol` — all I/O happens through
injected callbacks — so it can be driven both by the discrete-event
scheme adapter (:class:`repro.schemes.dup_balanced.DupBalancedScheme`)
and synchronously by the property-test suite.

Mechanics
---------
- A fresh ``Subscribe(s)`` at a capped node ``N`` picks the delegate
  ``d``: the entry of ``N``'s list with the smallest ``(fanout, id)``
  that is alive, under its own cap, not ``s`` itself, and not
  push-reachable *from* ``s`` (the acyclicity guard).  ``N`` records the
  mapping ``s -> d`` and sends a point-to-point :class:`Delegate`; ``d``
  processes it as a local subscribe, so ``s`` rides ``d``'s pushes.
- While the mapping lives, control traffic for ``s`` arriving at ``N``
  routes to ``d``: subscribes/refreshes re-issue the (idempotent)
  delegation, unsubscribes become a :class:`Reclaim`, substitutes re-key
  the mapping and forward.
- When ``N``'s own fanout drains below the cap, it *reabsorbs* delegated
  subjects (smallest id first): the subject re-enters ``N``'s list and
  the delegate receives a :class:`Reclaim`, dissolving the split.
- No candidate (all entries capped, dead, or cyclic) falls back to the
  PR-7 refusal — redirect upstream plus NACK — so coverage never drops.

Delegated entries are deliberately *cross-branch* state: ``d`` lists a
subject that is not in its subtree, exactly like the parent does after a
PR-7 redirect.  The classic branch-uniqueness invariant therefore holds
for the underlying tree minus delegated entries; the suite asserts the
balanced-aware set (cap bound, push-graph acyclicity, exact coverage,
reabsorption to zero when load drains).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.core.protocol import DupProtocol, StepResult
from repro.net.message import (
    Delegate,
    Reclaim,
    RefreshSubscribe,
    Subscribe,
    Substitute,
    Unsubscribe,
)

NodeId = int


def _noop(*_args, **_kwargs) -> None:
    return None


class DupBalancer:
    """Delegation state and the capped-control pipeline of ``dup-balanced``.

    Parameters
    ----------
    protocol:
        The shared DUP state machine (subscriber lists live there).
    cap:
        The fanout cap (``OverloadPlan.max_subscribers``); the balancer
        is inert when 0.
    redirected:
        The *scheme's* redirect bookkeeping, shared by reference so the
        PR-7 fallback and the split pipeline never disagree about where
        a subject's state lives.
    alive / is_root:
        Liveness and authority oracles.
    send_down:
        ``send_down(sender, target, payload)`` — deliver one control
        payload point-to-point (reliably in the engine, synchronously in
        tests).
    on_reject:
        Called when the fallback refusal fires (the scheme counts it,
        records the flight event, and NACKs the subject).
    note_lease:
        Called with each synthetic Subscribe/Unsubscribe applied locally
        so lease bookkeeping tracks the list mutations.
    record / trace:
        Optional flight-recorder / span-annotation hooks.
    """

    def __init__(
        self,
        protocol: DupProtocol,
        cap: int,
        *,
        redirected: dict[NodeId, set[NodeId]],
        alive: Callable[[NodeId], bool],
        is_root: Callable[[NodeId], bool],
        send_down: Callable[[NodeId, NodeId, object], None],
        on_reject: Callable[[NodeId, NodeId], None],
        note_lease: Callable[[NodeId, object], None] = _noop,
        record: Callable[..., None] = _noop,
        trace: Callable[..., None] = _noop,
    ):
        self._protocol = protocol
        self._cap = int(cap)
        self._redirected = redirected
        self._alive = alive
        self._is_root = is_root
        self._send_down = send_down
        self._on_reject = on_reject
        self._note_lease = note_lease
        self._record = record
        self._trace = trace
        #: delegator -> {subject -> delegate}
        self._delegations: dict[NodeId, dict[NodeId, NodeId]] = {}
        #: Splits performed (Delegate issued for a fresh subscriber).
        self.splits = 0
        #: Delegated subjects taken back after local load drained.
        self.reabsorbed = 0

    # -- introspection -----------------------------------------------------
    @property
    def cap(self) -> int:
        """The fanout cap the balancer enforces."""
        return self._cap

    def delegate_for(self, node: NodeId, subject: NodeId) -> Optional[NodeId]:
        """The delegate currently serving ``subject`` for ``node``."""
        mapping = self._delegations.get(node)
        if mapping is None:
            return None
        return mapping.get(subject)

    def delegations_of(self, node: NodeId) -> dict[NodeId, NodeId]:
        """Snapshot of ``node``'s subject -> delegate mappings."""
        return dict(self._delegations.get(node, ()))

    def delegated_count(self) -> int:
        """Total live subject -> delegate mappings across all nodes."""
        return sum(len(m) for m in self._delegations.values())

    def fanout(self, node: NodeId) -> int:
        """Subscriber-list entries other than the node itself."""
        s_list = self._protocol.s_list(node)
        return sum(1 for entry in s_list if entry != node)

    # -- the capped-control pipeline ---------------------------------------
    def handle(self, node: NodeId, payload: object, combined: StepResult) -> bool:
        """Process one control payload at ``node`` under the cap.

        Returns ``True`` when the payload was fully handled here (the
        caller must skip the plain ``protocol.step``).  The pipeline, in
        order: delegation payloads, routing for delegated subjects,
        redirect relaying (the PR-7 flow), and — for a fresh subscribe at
        a capped node — split-or-refuse.
        """
        if isinstance(payload, Delegate):
            self._accept_delegate(node, payload, combined)
            return True
        if isinstance(payload, Reclaim):
            self._accept_reclaim(node, payload, combined)
            return True
        if self._route(node, payload, combined):
            return True
        if self._relay_redirected(node, payload, combined):
            return True
        if self._relay_dissolution(node, payload, combined):
            return True
        if not isinstance(payload, Subscribe):
            return False
        subject = payload.subject
        if subject == node or self._is_root(node):
            return False
        s_list = self._protocol.s_list(node)
        if subject in s_list:
            return False  # already listed: renewal, not growth
        if self.fanout(node) < self._cap:
            return False
        delegate = self.choose_delegate(node, subject)
        if delegate is not None:
            self.delegate(node, subject, delegate)
            return True
        return self._refuse(node, payload, combined)

    # -- delegation payloads ------------------------------------------------
    def _accept_delegate(
        self, node: NodeId, payload: Delegate, combined: StepResult
    ) -> None:
        """``node`` was handed ``payload.subject`` by a capped delegator."""
        subscribe = Subscribe(payload.subject)
        if self._relay_redirected(node, subscribe, combined):
            return  # the subject's state lives at our parent already
        if payload.subject != node and not self._is_root(node):
            s_list = self._protocol.s_list(node)
            if payload.subject not in s_list and self.fanout(node) >= self._cap:
                # The delegate filled up while the Delegate was in
                # flight: no cascading splits — fall back to the PR-7
                # refusal *here* (redirect upstream, NACK the subject).
                self._refuse(node, subscribe, combined)
                return
        combined.merge(self._protocol.step(node, subscribe))
        self._note_lease(node, subscribe)

    def _accept_reclaim(
        self, node: NodeId, payload: Reclaim, combined: StepResult
    ) -> None:
        """The delegator took ``payload.subject`` back (or it left)."""
        unsubscribe = Unsubscribe(payload.subject)
        if self._relay_redirected(node, unsubscribe, combined):
            return  # we had redirected it upward; relay the removal too
        combined.merge(self._protocol.step(node, unsubscribe))
        self._note_lease(node, unsubscribe)

    # -- routing for delegated subjects --------------------------------------
    def _route(self, node: NodeId, payload: object, combined: StepResult) -> bool:
        mapping = self._delegations.get(node)
        if not mapping:
            return False
        subject = getattr(payload, "subject", None)
        if subject is not None and subject in mapping:
            if subject in self._protocol.s_list(node):
                # The subject re-entered the local list (substitute or
                # churn adoption): the local entry wins, drop the stale
                # mapping and process normally.
                self._unmap(node, subject)
                return False
            delegate = mapping[subject]
            if isinstance(payload, (Subscribe, RefreshSubscribe)):
                # Renewal / repair: re-issue the idempotent delegation.
                self._send_down(
                    node, delegate, Delegate(subject=subject, delegator=node)
                )
                return True
            if isinstance(payload, Unsubscribe):
                self._unmap(node, subject)
                self._send_down(
                    node, delegate, Reclaim(subject=subject, delegator=node)
                )
                return True
            return False
        if isinstance(payload, Substitute) and payload.old in mapping:
            if payload.old in self._protocol.s_list(node):
                # Stale mapping (churn adoption re-localized the
                # entry): the substitute targets the *local* list now.
                self._unmap(node, payload.old)
                return False
            delegate = mapping.pop(payload.old)
            mapping[payload.new] = delegate
            self._send_down(node, delegate, payload)
            return True
        if (
            isinstance(payload, Substitute)
            and mapping.get(payload.new) == payload.old
        ):
            # Natural dissolution: the delegate collapsed to a pure
            # relay for its last delegated subject and asks to be
            # bypassed.  Let the plain step swap the subject in for the
            # delegate, and flush the delegate's now-vestigial relay
            # entry so a later revival starts from a clean slate instead
            # of re-advertising a subject it no longer serves.
            self._unmap(node, payload.new)
            self._protocol.s_list(payload.old).discard(payload.new)
            return False
        return False

    def _relay_dissolution(
        self, node: NodeId, payload: object, combined: StepResult
    ) -> bool:
        """Drain a dissolution ``Substitute`` crossing a vestigial path.

        When a delegate collapses to a pure relay for its last delegated
        subject, its ``Substitute(delegate, subject)`` walks the tree
        path toward the delegator.  Every path entry it crosses is
        vestigial — it advertises a delegate that serves nobody — so
        rewriting those entries in place (the plain rule) strands relay
        entries that later re-advertise the subject, push to nodes that
        no longer want updates, and sneak past the fanout cap.  Instead:
        finish the bookkeeping at the delegator directly (point-to-point,
        like all delegation traffic) and drain the local path entry by
        the plain unsubscribe rules, whose upstream continuation clears
        the rest of the stale path hop by hop.
        """
        if not isinstance(payload, Substitute):
            return False
        delegate, subject = payload.old, payload.new
        for delegator, mapping in self._delegations.items():
            if delegator != node and mapping.get(subject) == delegate:
                self._unmap(delegator, subject)
                self._protocol.s_list(delegate).discard(subject)
                self._trace(
                    node,
                    "dup.dissolve-relay",
                    f"subject={subject} delegate={delegate}"
                    f" delegator={delegator}",
                )
                self._send_down(node, delegator, Substitute(delegate, subject))
                combined.merge(self._protocol.step(node, Unsubscribe(delegate)))
                return True
        return False

    # -- the PR-7 flows (shared bookkeeping with the base scheme) ------------
    def _relay_redirected(
        self, node: NodeId, payload: object, combined: StepResult
    ) -> bool:
        """Relay traffic for subjects whose state lives at the parent."""
        redirected = self._redirected.get(node)
        if not redirected:
            return False
        if isinstance(payload, Substitute):
            if payload.old in redirected and payload.new != node:
                # The redirected subject's advertisement changed
                # downstream (a junction formed beneath us).  Its entry
                # lives at an ancestor, so rewrite the bookkeeping and
                # relay the swap upward instead of applying it to the
                # local list — that would mint an orphaned entry no push
                # ever reaches.
                redirected.discard(payload.old)
                redirected.add(payload.new)
                self._trace(node, "dup.redirect-relay", repr(payload))
                combined.upstream.append(payload)
                return True
            return False
        subject = getattr(payload, "subject", None)
        if subject is None or subject == node:
            return False
        if subject not in redirected:
            return False
        if isinstance(payload, Unsubscribe):
            redirected.discard(subject)
        if isinstance(payload, (Subscribe, Unsubscribe, RefreshSubscribe)):
            self._trace(node, "dup.redirect-relay", repr(payload))
            combined.upstream.append(payload)
            return True
        return False

    def _refuse(
        self, node: NodeId, payload: Subscribe, combined: StepResult
    ) -> bool:
        """PR-7 fallback: redirect the subscribe upstream, NACK the subject."""
        subject = payload.subject
        self._redirected.setdefault(node, set()).add(subject)
        combined.upstream.append(payload)
        self._on_reject(node, subject)
        return True

    # -- splitting -----------------------------------------------------------
    def choose_delegate(self, node: NodeId, subject: NodeId) -> Optional[NodeId]:
        """Best-ranked entry of ``node``'s list to take ``subject``.

        Rank is ``(fanout, id)`` ascending over entries that are alive,
        under their own cap, not the subject, and not push-reachable
        from the subject (adding the edge must keep the push graph
        acyclic).  ``None`` when no entry qualifies.
        """
        protocol = self._protocol
        best: Optional[NodeId] = None
        best_key: Optional[tuple[int, NodeId]] = None
        for entry in protocol.s_list(node):
            if entry == node or entry == subject:
                continue
            if not self._alive(entry):
                continue
            fanout = self.fanout(entry)
            if fanout >= self._cap:
                continue
            if self._push_reaches(subject, entry):
                continue
            key = (fanout, entry)
            if best_key is None or key < best_key:
                best, best_key = entry, key
        return best

    def delegate(self, node: NodeId, subject: NodeId, target: NodeId) -> None:
        """Record the split and hand ``subject`` to ``target``."""
        self.splits += 1
        self._delegations.setdefault(node, {})[subject] = target
        self._record(
            "split-subscriber",
            node,
            subject,
            f"delegate={target}",
        )
        self._trace(
            node, "dup.split-subscriber", f"subject={subject} delegate={target}"
        )
        self._send_down(node, target, Delegate(subject=subject, delegator=node))

    def _push_reaches(self, src: NodeId, dst: NodeId) -> bool:
        """Whether ``dst`` is reachable from ``src`` over push edges."""
        protocol = self._protocol
        seen = {src}
        frontier = [src]
        while frontier:
            current = frontier.pop()
            for target in protocol.push_targets(current):
                if target == dst:
                    return True
                if target not in seen:
                    seen.add(target)
                    frontier.append(target)
        return False

    # -- reabsorption ---------------------------------------------------------
    def rebalance(self, node: NodeId) -> Optional[StepResult]:
        """Reabsorb delegated subjects while ``node`` is under its cap.

        Smallest subject id first, for determinism.  Returns the merged
        local step result (upstream continuations + new subscribers for
        an immediate push), or ``None`` when nothing changed.
        """
        if not self._cap:
            return None
        mapping = self._delegations.get(node)
        if not mapping:
            return None
        protocol = self._protocol
        s_list = protocol.s_list(node)
        result: Optional[StepResult] = None
        while mapping:
            if not self._is_root(node) and self.fanout(node) >= self._cap:
                break
            subject = min(mapping)
            target = mapping.pop(subject)
            if subject in s_list:
                continue  # stale mapping: the entry is already local
            if result is None:
                result = StepResult()
            self.reabsorbed += 1
            self._record(
                "reabsorb-subscriber", node, subject, f"delegate={target}"
            )
            self._trace(
                node,
                "dup.reabsorb-subscriber",
                f"subject={subject} delegate={target}",
            )
            subscribe = Subscribe(subject)
            result.merge(protocol.step(node, subscribe))
            self._note_lease(node, subscribe)
            self._send_down(
                node, target, Reclaim(subject=subject, delegator=node)
            )
        if not mapping:
            self._delegations.pop(node, None)
        return result

    def shed_overflow(self, node: NodeId) -> Optional[StepResult]:
        """Re-cap a list grown past the cap by churn adoption.

        Churn adoption (:meth:`~repro.core.maintenance.DupMaintenance.node_left`
        hands a departed node's whole list to its parent) is the one
        flow that can grow a capped list without passing the subscribe
        pipeline.  Three passes restore the invariant: adopted entries
        that duplicate an existing delegation of ``node`` are simply
        dropped (the subject already receives pushes through the
        delegate); the remaining excess is split to best-ranked
        delegates exactly as the pipeline would have; anything still
        over the cap falls back to the PR-7 redirect — the entry moves
        upstream as a fresh ``Subscribe`` (no NACK, the subscribers did
        nothing wrong).  Returns the upstream payloads (redirected
        subscribes plus the advertisement correction when shedding
        changed what ``node`` advertises), or ``None``.
        """
        if not self._cap or self._is_root(node):
            return None
        if self.fanout(node) <= self._cap:
            return None
        s_list = self._protocol.s_list(node)
        pre = node if len(s_list) >= 2 else s_list.first
        result = StepResult()
        delegated = self._delegations.get(node, {})
        for subject in sorted(s_list):
            if self.fanout(node) <= self._cap:
                break
            if subject != node and subject in delegated:
                s_list.discard(subject)
                self._trace(node, "dup.shed-duplicate", f"subject={subject}")
        shed = True
        while shed and self.fanout(node) > self._cap:
            shed = False
            for subject in sorted(s_list):
                if subject == node:
                    continue
                target = self.choose_delegate(node, subject)
                if target is None:
                    continue
                s_list.discard(subject)
                self.delegate(node, subject, target)
                shed = True
                break
        while self.fanout(node) > self._cap:
            subject = next(s for s in sorted(s_list) if s != node)
            s_list.discard(subject)
            self._redirected.setdefault(node, set()).add(subject)
            self._trace(node, "dup.shed-redirect", f"subject={subject}")
            result.upstream.append(Subscribe(subject))
        post = node if len(s_list) >= 2 else s_list.first
        if pre is not None and post is not None and pre != post:
            result.upstream.append(Substitute(old=pre, new=post))
        return result if result.upstream else None
    # -- churn -----------------------------------------------------------------
    def node_gone(self, node: NodeId) -> list[tuple[NodeId, NodeId]]:
        """Unwind delegation state around a departing/failed ``node``.

        Must run *before* the maintenance repair flows so adoption sees
        plain-DUP state:

        - ``node`` as delegator: mappings are forgotten (the entries
          survive at their delegates; any leak decays via soft-state
          leases — documented behaviour).
        - ``node`` as delegate: its delegated cross-branch entries are
          stripped from its list and returned as ``(delegator, subject)``
          orphans for the scheme to re-home after maintenance runs.
        - ``node`` as delegated subject: the mapping is dropped and the
          delegate told to reclaim (drop) the dead subject's entry.
        """
        self._delegations.pop(node, None)
        orphans: list[tuple[NodeId, NodeId]] = []
        for delegator, mapping in list(self._delegations.items()):
            for subject, target in list(mapping.items()):
                if target == node:
                    self._protocol.s_list(node).discard(subject)
                    self._unmap(delegator, subject)
                    orphans.append((delegator, subject))
                elif subject == node:
                    self._unmap(delegator, subject)
                    self._send_down(
                        delegator,
                        target,
                        Reclaim(subject=subject, delegator=delegator),
                    )
        return orphans

    def _unmap(self, node: NodeId, subject: NodeId) -> None:
        mapping = self._delegations.get(node)
        if mapping is None:
            return
        mapping.pop(subject, None)
        if not mapping:
            self._delegations.pop(node, None)

    def check_caps(self, exclude_root: bool = True) -> list[NodeId]:
        """Nodes whose fanout exceeds the cap (test helper; empty = ok)."""
        if not self._cap:
            return []
        offenders = []
        for node in self._protocol.nodes_with_state():
            if exclude_root and self._is_root(node):
                continue
            if self.fanout(node) > self._cap:
                offenders.append(node)
        return offenders
