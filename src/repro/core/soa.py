"""Structure-of-arrays state for the scale tier (ROADMAP item 1).

At 10^5+ nodes the per-object layers — dict-of-dicts trees, per-entry
timer objects, per-node subscriber lists — dominate memory and make
every sweep a Python loop.  This module provides the flat replacements:

* :class:`SoaTree` — the index search tree as numpy parent/depth arrays
  over dense slots, mirroring :class:`repro.topology.tree.SearchTree`'s
  mutator semantics (the property tests run both against random churn
  interleavings and compare).  Subtree updates are vectorized level
  sweeps (``np.isin`` / ``np.flatnonzero``) instead of pointer chasing.
* :class:`ExpiryWheel` — an append-only (deadline, a, b) record array
  with one vectorized ``np.flatnonzero(expiry <= now)`` pass per sweep.
  Records are *hints*: the wheel never cancels, callers re-validate on
  pop (a refreshed cache entry simply produces a stale hint that the
  re-validation drops).
* :class:`FlatSubscriberTable` — (holder, entry) subscription pairs as
  parallel int arrays with O(1) membership and swap-with-last removal,
  so population-wide fanout statistics are one ``np.unique`` call.

Everything here is deterministic and allocation-frugal; nothing draws
randomness.  The single-key engine keeps its dict-based structures (bit
compatibility with the goldens is pinned there); the multi-key scale
engine and the telemetry layer build on these.
"""

from __future__ import annotations

from typing import Iterator, Optional

import numpy as np

from repro.errors import NodeNotFoundError, TopologyError

NodeId = int

#: Parent-slot sentinel for the root.
_ROOT = -1
#: Parent-slot sentinel for a free (unallocated) slot.
_FREE = -2


class SoaTree:
    """A rooted tree stored as parent/depth arrays over dense slots.

    Node ids map to dense integer slots; ``parent[slot]`` holds the
    parent's slot (``-1`` for the root), ``depth[slot]`` the hop count
    to the root.  Mutators mirror :class:`~repro.topology.tree.SearchTree`
    (same operations, same error types) so the two are interchangeable
    oracles; child order is not represented (the scale tier never
    consumes it).
    """

    def __init__(self, root: NodeId, capacity: int = 64):
        capacity = max(8, int(capacity))
        self._index: dict[NodeId, int] = {root: 0}
        self._ids = np.empty(capacity, dtype=np.int64)
        self._parent = np.full(capacity, _FREE, dtype=np.int64)
        self._depth = np.zeros(capacity, dtype=np.int64)
        self._ids[0] = root
        self._parent[0] = _ROOT
        self._root = root
        self._free: list[int] = []
        self._limit = 1  # slots [0, _limit) have ever been used
        self._version = 0

    # -- plumbing ---------------------------------------------------------
    def _grow(self) -> None:
        capacity = len(self._parent) * 2
        self._ids = np.resize(self._ids, capacity)
        parent = np.full(capacity, _FREE, dtype=np.int64)
        parent[: self._limit] = self._parent[: self._limit]
        self._parent = parent
        self._depth = np.resize(self._depth, capacity)

    def _alloc(self, node: NodeId) -> int:
        if self._free:
            slot = self._free.pop()
        else:
            if self._limit == len(self._parent):
                self._grow()
            slot = self._limit
            self._limit += 1
        self._ids[slot] = node
        self._index[node] = slot
        return slot

    def _release(self, node: NodeId, slot: int) -> None:
        del self._index[node]
        self._parent[slot] = _FREE
        self._free.append(slot)

    def _slot(self, node: NodeId) -> int:
        slot = self._index.get(node)
        if slot is None:
            raise NodeNotFoundError(f"node {node} not in tree")
        return slot

    def _child_slots(self, slots: np.ndarray) -> np.ndarray:
        """Slots whose parent is in ``slots`` (one vectorized pass)."""
        prefix = self._parent[: self._limit]
        return np.flatnonzero(np.isin(prefix, slots))

    def _shift_subtree(self, slot: int, delta: int) -> None:
        """Adjust depths of ``slot``'s whole subtree by ``delta``.

        Vectorized level sweep: each round resolves one tree level of
        the subtree with ``np.isin`` over the parent array.
        """
        frontier = np.array([slot], dtype=np.int64)
        while frontier.size:
            self._depth[frontier] += delta
            frontier = self._child_slots(frontier)

    # -- construction -----------------------------------------------------
    def add_leaf(self, parent: NodeId, node: NodeId) -> None:
        """Attach ``node`` as a new child of ``parent``."""
        parent_slot = self._slot(parent)
        if node in self._index:
            raise TopologyError(f"node {node} already in tree")
        slot = self._alloc(node)
        self._parent[slot] = parent_slot
        self._depth[slot] = self._depth[parent_slot] + 1
        self._version += 1

    def insert_on_edge(
        self, upper: NodeId, lower: NodeId, node: NodeId
    ) -> None:
        """Insert ``node`` between ``upper`` (parent) and ``lower``."""
        upper_slot = self._slot(upper)
        lower_slot = self._slot(lower)
        if node in self._index:
            raise TopologyError(f"node {node} already in tree")
        if self._parent[lower_slot] != upper_slot:
            raise TopologyError(
                f"({upper}, {lower}) is not an edge of the tree"
            )
        slot = self._alloc(node)
        self._parent[slot] = upper_slot
        self._depth[slot] = self._depth[upper_slot] + 1
        self._parent[lower_slot] = slot
        self._shift_subtree(lower_slot, +1)
        self._version += 1

    def remove_leaf(self, node: NodeId) -> None:
        """Remove a leaf node (fails if it has children or is the root)."""
        slot = self._slot(node)
        if node == self._root:
            raise TopologyError("cannot remove the root")
        if self._child_slots(np.array([slot], dtype=np.int64)).size:
            raise TopologyError(f"node {node} is not a leaf")
        self._release(node, slot)
        self._version += 1

    def splice_out(self, node: NodeId) -> NodeId:
        """Remove an interior node; its children re-parent to its parent."""
        slot = self._slot(node)
        if node == self._root:
            raise TopologyError(
                "cannot splice out the root; use replace_root instead"
            )
        parent_slot = self._parent[slot]
        orphans = self._child_slots(np.array([slot], dtype=np.int64))
        # The subtree loses a level before the re-parent (the orphan
        # sweep covers each orphan's own subtree).
        for orphan in orphans:
            self._shift_subtree(int(orphan), -1)
        self._parent[orphans] = parent_slot
        self._release(node, slot)
        self._version += 1
        return int(self._ids[parent_slot])

    def replace_root(self, new_root: NodeId) -> None:
        """Replace a failed root with a fresh node."""
        if new_root in self._index:
            raise TopologyError(f"node {new_root} already in tree")
        old_root = self._root
        old_slot = self._index[old_root]
        children = self._child_slots(np.array([old_slot], dtype=np.int64))
        slot = self._alloc(new_root)
        self._parent[slot] = _ROOT
        self._depth[slot] = 0
        self._parent[children] = slot
        self._release(old_root, old_slot)
        self._root = new_root
        self._version += 1

    def promote_to_root(self, node: NodeId) -> NodeId:
        """An existing node takes over the failed root's position."""
        self._slot(node)
        if node == self._root:
            raise TopologyError(f"node {node} is already the root")
        absorber = self.splice_out(node)
        self.replace_root(node)
        return absorber

    def rename(self, old: NodeId, new: NodeId) -> None:
        """Give node ``old`` the id ``new``, keeping its tree position."""
        slot = self._slot(old)
        if new in self._index:
            raise TopologyError(f"node {new} already in tree")
        del self._index[old]
        self._index[new] = slot
        self._ids[slot] = new
        if old == self._root:
            self._root = new
        self._version += 1

    # -- queries ------------------------------------------------------------
    @property
    def root(self) -> NodeId:
        """The authority node of the tree's key."""
        return self._root

    @property
    def version(self) -> int:
        """Structure version: bumped by every mutating operation."""
        return self._version

    def __contains__(self, node: NodeId) -> bool:
        return node in self._index

    def __len__(self) -> int:
        return len(self._index)

    def __iter__(self) -> Iterator[NodeId]:
        return iter(self._index)

    def parent(self, node: NodeId) -> Optional[NodeId]:
        """Parent of ``node`` (``None`` for the root)."""
        parent_slot = self._parent[self._slot(node)]
        if parent_slot == _ROOT:
            return None
        return int(self._ids[parent_slot])

    def depth(self, node: NodeId) -> int:
        """Number of hops from ``node`` up to the root."""
        return int(self._depth[self._slot(node)])

    def path_to_root(self, node: NodeId) -> list[NodeId]:
        """Nodes from ``node`` (inclusive) up to the root (inclusive)."""
        slot = self._slot(node)
        path = [node]
        parent = self._parent[slot]
        while parent != _ROOT:
            path.append(int(self._ids[parent]))
            parent = self._parent[parent]
        return path

    def is_leaf(self, node: NodeId) -> bool:
        """Whether ``node`` has no children."""
        slot = self._slot(node)
        return not self._child_slots(np.array([slot], dtype=np.int64)).size

    def children(self, node: NodeId) -> tuple[NodeId, ...]:
        """Children of ``node``, ascending by slot (not insertion order)."""
        slot = self._slot(node)
        child = self._child_slots(np.array([slot], dtype=np.int64))
        return tuple(int(i) for i in self._ids[child])

    def _present_slots(self) -> np.ndarray:
        return np.flatnonzero(self._parent[: self._limit] != _FREE)

    def depths(self) -> np.ndarray:
        """Depth of every present node (one array, unspecified order)."""
        return self._depth[self._present_slots()]

    def height(self) -> int:
        """Maximum depth over all nodes (vectorized)."""
        return int(self.depths().max())

    def mean_depth(self) -> float:
        """Average depth over all nodes (vectorized)."""
        depths = self.depths()
        return float(depths.mean())

    # -- invariants -----------------------------------------------------------
    def validate(self) -> None:
        """Check structural invariants; raise :class:`TopologyError` if broken."""
        present = self._present_slots()
        if len(present) != len(self._index):
            raise TopologyError("slot bookkeeping out of sync")
        root_slot = self._index.get(self._root)
        if root_slot is None or self._parent[root_slot] != _ROOT:
            raise TopologyError("root has a parent or is missing")
        roots = np.flatnonzero(self._parent[: self._limit] == _ROOT)
        if len(roots) != 1:
            raise TopologyError(f"{len(roots)} roots present")
        # Walk levels from the root: checks reachability, cycle freedom,
        # and depth consistency in one sweep.
        seen = 0
        expected_depth = 0
        frontier = np.array([root_slot], dtype=np.int64)
        while frontier.size:
            if not np.all(self._depth[frontier] == expected_depth):
                raise TopologyError("depth array inconsistent")
            seen += frontier.size
            frontier = self._child_slots(frontier)
            expected_depth += 1
        if seen != len(present):
            raise TopologyError("unreachable nodes present")

    def __repr__(self) -> str:
        return f"SoaTree(root={self._root}, nodes={len(self._index)})"


class ExpiryWheel:
    """Vectorized TTL sweeps over append-only (deadline, a, b) records.

    ``push`` appends one record (amortized O(1)); ``pop_due`` compacts
    the array with a single ``np.flatnonzero(expiry <= now)`` pass and
    returns the due ``(a, b)`` tags in insertion order.  Records are
    never cancelled or updated in place — a renewed entry just pushes a
    fresh record, and the caller drops the superseded hint when it pops
    (lazy invalidation).  ``a``/``b`` are opaque int tags; the cache
    sweep uses (node, key), the lease sweep (holder, entry).
    """

    __slots__ = ("_times", "_a", "_b", "_size")

    def __init__(self, capacity: int = 256):
        capacity = max(16, int(capacity))
        self._times = np.empty(capacity, dtype=np.float64)
        self._a = np.empty(capacity, dtype=np.int64)
        self._b = np.empty(capacity, dtype=np.int64)
        self._size = 0

    def push(self, deadline: float, a: int, b: int = 0) -> None:
        """Record that ``(a, b)`` is due at ``deadline``."""
        size = self._size
        if size == len(self._times):
            capacity = size * 2
            self._times = np.resize(self._times, capacity)
            self._a = np.resize(self._a, capacity)
            self._b = np.resize(self._b, capacity)
        self._times[size] = deadline
        self._a[size] = a
        self._b[size] = b
        self._size = size + 1

    def pop_due(self, now: float) -> list[tuple[int, int]]:
        """All records with ``deadline <= now``, removed and returned."""
        size = self._size
        if not size:
            return []
        times = self._times[:size]
        due = np.flatnonzero(times <= now)
        if not due.size:
            return []
        out = list(
            zip(self._a[due].tolist(), self._b[due].tolist())
        )
        keep = np.flatnonzero(times > now)
        kept = keep.size
        self._times[:kept] = times[keep]
        self._a[:kept] = self._a[:size][keep]
        self._b[:kept] = self._b[:size][keep]
        self._size = kept
        return out

    def next_deadline(self) -> float:
        """Earliest pending deadline (``inf`` when empty)."""
        if not self._size:
            return float("inf")
        return float(self._times[: self._size].min())

    def __len__(self) -> int:
        return self._size

    def __repr__(self) -> str:
        return f"ExpiryWheel(pending={self._size})"


class FlatSubscriberTable:
    """(holder, entry) subscription pairs as parallel int arrays.

    O(1) add/discard/membership through a row index; removal swaps the
    last row in.  Fanout statistics over the whole population —
    per-holder counts, the max/mean fanout the telemetry layer samples —
    are single ``np.unique`` passes instead of dict iterations.
    """

    __slots__ = ("_holders", "_entries", "_rows", "_size")

    def __init__(self, capacity: int = 256):
        capacity = max(16, int(capacity))
        self._holders = np.empty(capacity, dtype=np.int64)
        self._entries = np.empty(capacity, dtype=np.int64)
        self._rows: dict[tuple[int, int], int] = {}
        self._size = 0

    def add(self, holder: NodeId, entry: NodeId) -> bool:
        """Insert the pair; returns False when it was already present."""
        pair = (holder, entry)
        if pair in self._rows:
            return False
        size = self._size
        if size == len(self._holders):
            capacity = size * 2
            self._holders = np.resize(self._holders, capacity)
            self._entries = np.resize(self._entries, capacity)
        self._holders[size] = holder
        self._entries[size] = entry
        self._rows[pair] = size
        self._size = size + 1
        return True

    def discard(self, holder: NodeId, entry: NodeId) -> bool:
        """Remove the pair; returns False when it was absent."""
        row = self._rows.pop((holder, entry), None)
        if row is None:
            return False
        last = self._size - 1
        if row != last:
            moved = (int(self._holders[last]), int(self._entries[last]))
            self._holders[row] = moved[0]
            self._entries[row] = moved[1]
            self._rows[moved] = row
        self._size = last
        return True

    def __contains__(self, pair: tuple[NodeId, NodeId]) -> bool:
        return pair in self._rows

    def __len__(self) -> int:
        return self._size

    def entries_for(self, holder: NodeId) -> np.ndarray:
        """Entries held by ``holder`` (one vectorized pass)."""
        prefix = self._holders[: self._size]
        return self._entries[: self._size][prefix == holder]

    def count_for(self, holder: NodeId) -> int:
        """Number of entries ``holder`` lists."""
        return int(
            np.count_nonzero(self._holders[: self._size] == holder)
        )

    def fanout(self) -> tuple[np.ndarray, np.ndarray]:
        """(holders, counts) over the whole table — one ``np.unique``."""
        return np.unique(self._holders[: self._size], return_counts=True)

    def max_fanout(self) -> int:
        """Largest per-holder entry count (0 when empty)."""
        if not self._size:
            return 0
        _, counts = self.fanout()
        return int(counts.max())

    def __repr__(self) -> str:
        return f"FlatSubscriberTable(pairs={self._size})"
