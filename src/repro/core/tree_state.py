"""Global consistency checks over the DUP tree state.

The protocol is distributed: each node only knows its own subscriber list.
These helpers take the global view (every list plus the search tree) and
verify the structural properties the paper's correctness argument rests
on.  They are used by unit and property-based tests after driving the
protocol through arbitrary subscribe/unsubscribe/churn sequences to a
quiescent state.

Checked invariants:

1. **Locality** — every subscriber-list member is the node itself or a
   strict descendant in the search tree.
2. **Branch uniqueness** — at most one member per downstream branch (the
   paper's bound: list length <= child count + 1).
3. **Virtual-path continuity** — a node with a non-empty list has a parent
   whose list contains the node's upstream *advertisement* (itself when it
   is in the DUP tree, its single member otherwise).
4. **Delivery** — every subscribed node is reachable from the root through
   push edges.
5. **Frugality** — pushes reach only subscribed nodes or DUP-tree interior
   nodes (no update is delivered to a node that neither wants nor forwards
   it — the property CUP lacks).
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional

from repro.core.protocol import DupProtocol
from repro.errors import ProtocolError
from repro.topology.tree import SearchTree

NodeId = int
Resolver = Callable[[NodeId], NodeId]


def _identity(node: NodeId) -> NodeId:
    return node


def push_reachable(
    protocol: DupProtocol,
    root: NodeId,
    resolve: Resolver = _identity,
) -> set[NodeId]:
    """Nodes that receive pushes, following forwarding semantics.

    Starting from the root, a push travels to every subscriber-list target
    of each *forwarding* node (the root and DUP-tree interior nodes).
    ``resolve`` maps departed ids onto their key-space successors.
    """
    reachable: set[NodeId] = set()
    frontier = [resolve(root)]
    visited = {resolve(root)}
    while frontier:
        sender = frontier.pop()
        if sender != resolve(root) and not protocol.in_dup_tree(sender):
            continue  # receives but does not forward
        for target in protocol.push_targets(sender):
            target = resolve(target)
            if target in visited:
                continue
            visited.add(target)
            reachable.add(target)
            frontier.append(target)
    return reachable


def check_dup_invariants(
    protocol: DupProtocol,
    tree: SearchTree,
    interested: Optional[Iterable[NodeId]] = None,
    resolve: Resolver = _identity,
) -> None:
    """Verify all invariants; raise :class:`ProtocolError` on violation.

    Parameters
    ----------
    protocol:
        The global protocol state.
    tree:
        The current index search tree.
    interested:
        When given, additionally assert that exactly these nodes are
        subscribed (valid in quiescent, fully propagated states).
    resolve:
        Alias resolver mapping departed node ids to their successors.
    """
    root = tree.root
    for node in protocol.nodes_with_state():
        node = resolve(node)
        if node not in tree:
            raise ProtocolError(f"state held by node {node} not in tree")
        s_list = protocol.s_list(node)
        branches: set[NodeId] = set()
        for member in s_list:
            member = resolve(member)
            if member == node:
                continue
            # Invariant 1: locality.
            if member not in tree or not tree.on_path_to_root(member, node):
                raise ProtocolError(
                    f"subscriber {member} of {node} is not a descendant"
                )
            # Invariant 2: branch uniqueness.
            branch = tree.child_branch(node, member)
            if branch in branches:
                raise ProtocolError(
                    f"two subscribers of {node} share branch {branch}"
                )
            branches.add(branch)
        # Invariant 3: virtual-path continuity.
        if len(s_list) > 0 and node != root:
            advertisement = (
                node if len(s_list) >= 2 else resolve(s_list.first)
            )
            parent = tree.parent(node)
            parent_list = protocol.s_list(parent)
            members = {resolve(m) for m in parent_list}
            if advertisement not in members:
                raise ProtocolError(
                    f"parent {parent} of {node} does not list its "
                    f"advertisement {advertisement} (has {sorted(members)})"
                )

    reachable = push_reachable(protocol, root, resolve)
    subscribed = {
        resolve(node)
        for node in protocol.nodes_with_state()
        if protocol.is_subscribed(resolve(node))
    }
    # Invariant 4: delivery.
    missing = subscribed - reachable - {resolve(root)}
    if missing:
        raise ProtocolError(f"subscribed but unreachable: {sorted(missing)}")
    # Invariant 5: frugality.
    for target in reachable:
        if not protocol.is_subscribed(target) and not protocol.in_dup_tree(
            target
        ):
            raise ProtocolError(
                f"push reaches {target}, which neither wants nor forwards it"
            )
    if interested is not None:
        interested_set = {resolve(node) for node in interested}
        if interested_set != subscribed:
            raise ProtocolError(
                "interest/subscription mismatch: "
                f"interested={sorted(interested_set)} "
                f"subscribed={sorted(subscribed)}"
            )
