"""Interest measurement policies.

The paper's policy (Section III-B): "if the number of queries a node
receives in the last TTL interval is greater than a threshold value c, the
node is considered to be interested in the index."  Queries *received*
covers both locally generated queries and forwarded requests arriving from
downstream.

:class:`WindowInterestPolicy` implements exactly that sliding window.
:class:`EwmaInterestPolicy` is an alternative (exponentially weighted
arrival-rate estimate) used by the ablation benchmark to quantify how much
the policy choice matters.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Protocol

from repro.errors import ConfigError


class InterestPolicy(Protocol):
    """Per-node interest estimator fed with query arrival times."""

    def record(self, now: float) -> None:
        """Register one query arrival at time ``now``."""
        ...

    def is_interested(self, now: float) -> bool:
        """Whether the node currently qualifies as interested."""
        ...


class WindowInterestPolicy:
    """The paper's sliding-window threshold policy.

    Parameters
    ----------
    window:
        Length of the trailing interval (the index TTL in the paper).
    threshold:
        The paper's ``c``: the node is interested when *more than*
        ``threshold`` queries arrived within the window.
    """

    __slots__ = ("_window", "_threshold", "_arrivals")

    def __init__(self, window: float, threshold: int):
        if window <= 0:
            raise ConfigError(f"window must be positive, got {window}")
        if threshold < 0:
            raise ConfigError(f"threshold must be >= 0, got {threshold}")
        self._window = float(window)
        self._threshold = int(threshold)
        self._arrivals: deque[float] = deque()

    def record(self, now: float) -> None:
        """Register one query arrival."""
        self._prune(now)
        self._arrivals.append(now)

    def is_interested(self, now: float) -> bool:
        """More than ``threshold`` arrivals in ``(now - window, now]``."""
        self._prune(now)
        return len(self._arrivals) > self._threshold

    def count(self, now: float) -> int:
        """Arrivals currently inside the window."""
        self._prune(now)
        return len(self._arrivals)

    def _prune(self, now: float) -> None:
        horizon = now - self._window
        arrivals = self._arrivals
        while arrivals and arrivals[0] <= horizon:
            arrivals.popleft()

    @property
    def window(self) -> float:
        """The trailing interval length."""
        return self._window

    @property
    def threshold(self) -> int:
        """The paper's ``c``."""
        return self._threshold

    def __repr__(self) -> str:
        return (
            f"WindowInterestPolicy(window={self._window}, "
            f"threshold={self._threshold}, pending={len(self._arrivals)})"
        )


class EwmaInterestPolicy:
    """Interest from an exponentially weighted query-rate estimate.

    The estimated arrival rate decays between arrivals; the node is
    interested while the estimated number of arrivals per window exceeds
    the threshold.  Compared to the window policy this reacts faster to
    bursts and forgets faster after them — the ablation quantifies the
    difference under Pareto arrivals.

    Parameters
    ----------
    window:
        Reference interval used to convert the rate into an expected
        arrival count (kept equal to the TTL for comparability).
    threshold:
        Interested while ``rate * window > threshold``.
    half_life:
        Time for the rate estimate to decay by half with no arrivals.
    """

    __slots__ = ("_window", "_threshold", "_decay", "_rate", "_last")

    def __init__(self, window: float, threshold: int, half_life: float | None = None):
        if window <= 0:
            raise ConfigError(f"window must be positive, got {window}")
        if threshold < 0:
            raise ConfigError(f"threshold must be >= 0, got {threshold}")
        half_life = half_life if half_life is not None else window / 2
        if half_life <= 0:
            raise ConfigError(f"half_life must be positive, got {half_life}")
        self._window = float(window)
        self._threshold = int(threshold)
        self._decay = math.log(2.0) / half_life
        self._rate = 0.0
        self._last = 0.0

    def record(self, now: float) -> None:
        """Register one query arrival; bumps the decayed rate estimate."""
        self._advance(now)
        self._rate += self._decay  # unit impulse normalized by the decay

    def is_interested(self, now: float) -> bool:
        """Whether the decayed rate maps to > threshold arrivals/window."""
        self._advance(now)
        return self._rate * self._window > self._threshold

    def _advance(self, now: float) -> None:
        if now > self._last:
            self._rate *= math.exp(-self._decay * (now - self._last))
            self._last = now

    @property
    def window(self) -> float:
        """The reference interval length."""
        return self._window

    @property
    def threshold(self) -> int:
        """Arrivals-per-window threshold."""
        return self._threshold

    def __repr__(self) -> str:
        return (
            f"EwmaInterestPolicy(window={self._window}, "
            f"threshold={self._threshold}, rate={self._rate:.4g})"
        )
