"""Interest measurement policies.

The paper's policy (Section III-B): "if the number of queries a node
receives in the last TTL interval is greater than a threshold value c, the
node is considered to be interested in the index."  Queries *received*
covers both locally generated queries and forwarded requests arriving from
downstream.

:class:`WindowInterestPolicy` implements exactly that sliding window.
:class:`EwmaInterestPolicy` is an alternative (exponentially weighted
arrival-rate estimate) used by the ablation benchmark to quantify how much
the policy choice matters.  :class:`AdaptiveInterestPolicy` keeps the
paper's decision rule but lets each node tune its own threshold from the
query rate it observes (ROADMAP item 5; the ``dup-adaptive`` scheme).
"""

from __future__ import annotations

import math
from collections import deque
from typing import Protocol

from repro.errors import ConfigError


class InterestPolicy(Protocol):
    """Per-node interest estimator fed with query arrival times."""

    def record(self, now: float) -> None:
        """Register one query arrival at time ``now``."""
        ...

    def is_interested(self, now: float) -> bool:
        """Whether the node currently qualifies as interested."""
        ...


class WindowInterestPolicy:
    """The paper's sliding-window threshold policy.

    Parameters
    ----------
    window:
        Length of the trailing interval (the index TTL in the paper).
    threshold:
        The paper's ``c``: the node is interested when *more than*
        ``threshold`` queries arrived within the window.
    """

    __slots__ = ("_window", "_threshold", "_arrivals")

    def __init__(self, window: float, threshold: int):
        if window <= 0:
            raise ConfigError(f"window must be positive, got {window}")
        if threshold < 0:
            raise ConfigError(f"threshold must be >= 0, got {threshold}")
        self._window = float(window)
        self._threshold = int(threshold)
        self._arrivals: deque[float] = deque()

    def record(self, now: float) -> None:
        """Register one query arrival."""
        self._prune(now)
        self._arrivals.append(now)

    def is_interested(self, now: float) -> bool:
        """More than ``threshold`` arrivals in ``(now - window, now]``."""
        self._prune(now)
        return len(self._arrivals) > self._threshold

    def count(self, now: float) -> int:
        """Arrivals currently inside the window."""
        self._prune(now)
        return len(self._arrivals)

    def _prune(self, now: float) -> None:
        horizon = now - self._window
        arrivals = self._arrivals
        while arrivals and arrivals[0] <= horizon:
            arrivals.popleft()

    @property
    def window(self) -> float:
        """The trailing interval length."""
        return self._window

    @property
    def threshold(self) -> int:
        """The paper's ``c``."""
        return self._threshold

    def __repr__(self) -> str:
        return (
            f"WindowInterestPolicy(window={self._window}, "
            f"threshold={self._threshold}, pending={len(self._arrivals)})"
        )


class EwmaInterestPolicy:
    """Interest from an exponentially weighted query-rate estimate.

    The estimated arrival rate decays between arrivals; the node is
    interested while the estimated number of arrivals per window exceeds
    the threshold.  Compared to the window policy this reacts faster to
    bursts and forgets faster after them — the ablation quantifies the
    difference under Pareto arrivals.

    Parameters
    ----------
    window:
        Reference interval used to convert the rate into an expected
        arrival count (kept equal to the TTL for comparability).
    threshold:
        Interested while ``rate * window > threshold``.
    half_life:
        Time for the rate estimate to decay by half with no arrivals.
    """

    __slots__ = ("_window", "_threshold", "_decay", "_rate", "_last")

    def __init__(self, window: float, threshold: int, half_life: float | None = None):
        if window <= 0:
            raise ConfigError(f"window must be positive, got {window}")
        if threshold < 0:
            raise ConfigError(f"threshold must be >= 0, got {threshold}")
        half_life = half_life if half_life is not None else window / 2
        if half_life <= 0:
            raise ConfigError(f"half_life must be positive, got {half_life}")
        self._window = float(window)
        self._threshold = int(threshold)
        self._decay = math.log(2.0) / half_life
        self._rate = 0.0
        self._last = 0.0

    def record(self, now: float) -> None:
        """Register one query arrival; bumps the decayed rate estimate."""
        self._advance(now)
        self._rate += self._decay  # unit impulse normalized by the decay

    def is_interested(self, now: float) -> bool:
        """Whether the decayed rate maps to > threshold arrivals/window."""
        self._advance(now)
        return self._rate * self._window > self._threshold

    def _advance(self, now: float) -> None:
        if now > self._last:
            self._rate *= math.exp(-self._decay * (now - self._last))
            self._last = now

    @property
    def window(self) -> float:
        """The reference interval length."""
        return self._window

    @property
    def threshold(self) -> int:
        """Arrivals-per-window threshold."""
        return self._threshold

    def __repr__(self) -> str:
        return (
            f"EwmaInterestPolicy(window={self._window}, "
            f"threshold={self._threshold}, rate={self._rate:.4g})"
        )


class AdaptiveInterestPolicy:
    """Sliding-window policy with a self-tuning threshold.

    The decision rule is the paper's (more than ``threshold`` arrivals in
    the trailing window), but the threshold tracks the node's own observed
    query rate instead of a global constant.  Time is cut into consecutive
    window-length epochs; when an epoch closes, its arrival count folds
    into an exponentially smoothed per-window rate estimate and the
    effective threshold becomes ``clamp(round(gain * rate), floor,
    ceiling)``.  Entirely deterministic — no RNG, and the estimator state
    advances only on ``record``/``is_interested`` calls, so replays are
    bit-identical.

    With ``floor == ceiling == c`` the threshold is pinned at ``c`` and
    every decision matches ``WindowInterestPolicy(window, c)`` exactly —
    the frozen-rate equivalence proven by ``tests/test_differential.py``.

    Parameters
    ----------
    window:
        Trailing interval (the index TTL) — also the epoch length.
    floor / ceiling:
        Hard bounds on the effective threshold.
    gain:
        Scales the rate estimate into a threshold: a node observing
        ``r`` queries per window settles near ``round(gain * r)``.
    smoothing:
        Weight of the newest closed epoch in the rate estimate
        (``rate = (1 - smoothing) * rate + smoothing * count``).
    """

    __slots__ = (
        "_window",
        "_floor",
        "_ceiling",
        "_gain",
        "_smoothing",
        "_arrivals",
        "_epoch_start",
        "_epoch_count",
        "_rate",
        "_threshold",
    )

    def __init__(
        self,
        window: float,
        floor: int,
        ceiling: int,
        gain: float = 0.5,
        smoothing: float = 0.5,
    ):
        if window <= 0:
            raise ConfigError(f"window must be positive, got {window}")
        if floor < 0:
            raise ConfigError(f"floor must be >= 0, got {floor}")
        if ceiling < floor:
            raise ConfigError(f"ceiling must be >= floor, got {ceiling} < {floor}")
        if gain < 0:
            raise ConfigError(f"gain must be >= 0, got {gain}")
        if not 0 < smoothing <= 1:
            raise ConfigError(f"smoothing must be in (0, 1], got {smoothing}")
        self._window = float(window)
        self._floor = int(floor)
        self._ceiling = int(ceiling)
        self._gain = float(gain)
        self._smoothing = float(smoothing)
        self._arrivals: deque[float] = deque()
        self._epoch_start = 0.0
        self._epoch_count = 0
        self._rate = 0.0
        self._threshold = self._clamp(0.0)

    def record(self, now: float) -> None:
        """Register one query arrival."""
        self._advance(now)
        self._prune(now)
        self._arrivals.append(now)
        self._epoch_count += 1

    def is_interested(self, now: float) -> bool:
        """More than the current threshold arrivals in ``(now - window, now]``."""
        self._advance(now)
        self._prune(now)
        return len(self._arrivals) > self._threshold

    def count(self, now: float) -> int:
        """Arrivals currently inside the window."""
        self._prune(now)
        return len(self._arrivals)

    def _advance(self, now: float) -> None:
        # Close every whole epoch that ended at or before ``now``.  The
        # loop is bounded: an idle stretch folds in as zero-count epochs,
        # each halving (by default) the rate estimate.
        while now - self._epoch_start >= self._window:
            self._rate = (
                1.0 - self._smoothing
            ) * self._rate + self._smoothing * self._epoch_count
            self._epoch_count = 0
            self._epoch_start += self._window
            self._threshold = self._clamp(self._gain * self._rate)

    def _clamp(self, raw: float) -> int:
        return max(self._floor, min(self._ceiling, int(round(raw))))

    def _prune(self, now: float) -> None:
        horizon = now - self._window
        arrivals = self._arrivals
        while arrivals and arrivals[0] <= horizon:
            arrivals.popleft()

    @property
    def window(self) -> float:
        """The trailing interval / epoch length."""
        return self._window

    @property
    def threshold(self) -> int:
        """The current effective threshold (clamped)."""
        return self._threshold

    @property
    def floor(self) -> int:
        """Lower bound on the effective threshold."""
        return self._floor

    @property
    def ceiling(self) -> int:
        """Upper bound on the effective threshold."""
        return self._ceiling

    @property
    def rate_estimate(self) -> float:
        """Smoothed arrivals-per-window estimate over closed epochs."""
        return self._rate

    def __repr__(self) -> str:
        return (
            f"AdaptiveInterestPolicy(window={self._window}, "
            f"floor={self._floor}, ceiling={self._ceiling}, "
            f"threshold={self._threshold}, rate={self._rate:.4g})"
        )
