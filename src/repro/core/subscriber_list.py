"""The per-node subscriber list (``S_list`` in the paper's Figure 3).

A node's subscriber list records "the node ids of the downstream nodes
(including itself) that are interested in the index.  It only records the
nearest interested node from each of its downstream branches."  Its length
is therefore bounded by the node's child count plus one — the low-overhead
property the paper emphasizes.

Semantically the list is an ordered set: membership matters for the
protocol transitions, order only for determinism.
"""

from __future__ import annotations

from typing import Iterator

NodeId = int


class SubscriberList:
    """An insertion-ordered set of subscriber node ids."""

    __slots__ = ("_items",)

    def __init__(self, items: "list[NodeId] | None" = None):
        self._items: list[NodeId] = []
        if items:
            for item in items:
                self.add(item)

    def add(self, node: NodeId) -> bool:
        """Insert ``node``; returns whether the list changed."""
        if node in self._items:
            return False
        self._items.append(node)
        return True

    def discard(self, node: NodeId) -> bool:
        """Remove ``node`` if present; returns whether the list changed."""
        try:
            self._items.remove(node)
        except ValueError:
            return False
        return True

    def replace(self, old: NodeId, new: NodeId) -> bool:
        """Substitute ``old`` with ``new`` in place (paper's substitute).

        Keeps ``old``'s position so branch ordering is stable.  If ``old``
        is absent, ``new`` is appended instead (tolerates message races);
        if ``new`` is already present, ``old`` is simply removed.  Returns
        whether the list changed.
        """
        if old == new:
            return False
        if new in self._items:
            return self.discard(old)
        try:
            index = self._items.index(old)
        except ValueError:
            self._items.append(new)
            return True
        self._items[index] = new
        return True

    @property
    def first(self) -> NodeId:
        """The single member (``S_list[0]`` in Figure 3)."""
        if not self._items:
            raise IndexError("subscriber list is empty")
        return self._items[0]

    def snapshot(self) -> tuple[NodeId, ...]:
        """An immutable copy of the current members, in order."""
        return tuple(self._items)

    def __contains__(self, node: NodeId) -> bool:
        return node in self._items

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[NodeId]:
        return iter(self._items)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, SubscriberList):
            return set(self._items) == set(other._items)
        if isinstance(other, (set, frozenset)):
            return set(self._items) == other
        return NotImplemented

    def __repr__(self) -> str:
        return f"SubscriberList({self._items})"
