"""Lease bookkeeping for soft-state DUP subscriptions.

The paper's subscriber lists are pure hard state: once an entry is
installed it survives until an explicit ``unsubscribe`` — which a
silently crashed subscriber will never send, leaving its ancestors
pushing into the void forever.  Attaching a *lease* to every non-self
entry turns the list soft: interested descendants renew their entry's
lease each refresh interval (see
:class:`~repro.net.message.LeaseRefresh`), and a parent whose entry goes
unrefreshed for a full lease TTL expires it, degrading the tree
gracefully to the TTL weak-consistency floor every scheme already has.

The table is deliberately dumb — expiry timestamps per (holder, entry)
pair, no protocol knowledge.  The scheme layer decides what a refresh
or an expiry *means*; the pure Figure-3 state machine stays untouched.
"""

from __future__ import annotations

from typing import Callable, Iterable

import numpy as np

NodeId = int


class LeaseTable:
    """Expiry timestamps for the subscriber-list entries a node holds.

    Parameters
    ----------
    ttl:
        Lease duration in simulated seconds.
    clock:
        Returns the current simulation time.
    """

    def __init__(self, ttl: float, clock: Callable[[], float]):
        if ttl <= 0:
            raise ValueError(f"lease ttl must be > 0, got {ttl}")
        self.ttl = ttl
        self._clock = clock
        self._expiry: dict[NodeId, dict[NodeId, float]] = {}

    def touch(self, holder: NodeId, entry: NodeId) -> None:
        """Renew (or grant) the lease on ``entry`` held by ``holder``."""
        self._expiry.setdefault(holder, {})[entry] = self._clock() + self.ttl

    def reconcile(self, holder: NodeId, entries: Iterable[NodeId]) -> None:
        """Align the table with the holder's actual subscriber list.

        Entries without a lease record are granted a fresh lease (they
        arrived through a path the scheme does not instrument, e.g. a
        churn handover); records whose entry is gone are dropped.
        """
        current = set(entries)
        held = self._expiry.setdefault(holder, {})
        for stale in [entry for entry in held if entry not in current]:
            del held[stale]
        deadline = self._clock() + self.ttl
        for entry in current:
            held.setdefault(entry, deadline)

    def expired(self, holder: NodeId, now: float) -> tuple[NodeId, ...]:
        """Entries of ``holder`` whose lease has lapsed at ``now``."""
        held = self._expiry.get(holder)
        if not held:
            return ()
        return tuple(
            entry for entry, deadline in held.items() if deadline <= now
        )

    def sweep(self, now: float) -> tuple[tuple[NodeId, NodeId], ...]:
        """All lapsed ``(holder, entry)`` pairs across the whole table.

        One vectorized ``np.flatnonzero(deadline <= now)`` pass instead
        of a per-holder :meth:`expired` loop — this is what makes a
        population-wide lease sweep affordable at 10^5 nodes.  Equivalent
        to calling :meth:`expired` for every holder; the scale engine
        runs it once per sweep period.
        """
        holders: list[NodeId] = []
        entries: list[NodeId] = []
        deadlines: list[float] = []
        for holder, held in self._expiry.items():
            for entry, deadline in held.items():
                holders.append(holder)
                entries.append(entry)
                deadlines.append(deadline)
        if not deadlines:
            return ()
        due = np.flatnonzero(
            np.asarray(deadlines, dtype=np.float64) <= now
        )
        return tuple((holders[i], entries[i]) for i in due)

    def drop(self, holder: NodeId, entry: NodeId) -> None:
        """Forget the lease record for one entry."""
        held = self._expiry.get(holder)
        if held is not None:
            held.pop(entry, None)

    def drop_holder(self, holder: NodeId) -> None:
        """Forget every lease ``holder`` held (departure/failure)."""
        self._expiry.pop(holder, None)

    def expiry(self, holder: NodeId, entry: NodeId) -> float:
        """The lease deadline (``-inf`` when no record exists)."""
        return self._expiry.get(holder, {}).get(entry, float("-inf"))

    def live(self, holder: NodeId, entry: NodeId, now: float) -> bool:
        """Whether ``holder``'s lease on ``entry`` is unexpired at ``now``.

        The rejoin reconciliation uses this to validate a crash-restarted
        node's retained subscriber entries against the live lease table:
        an entry whose lease lapsed while the holder was down (or whose
        record was dropped by the failure repair) is stale by definition.
        """
        return self.expiry(holder, entry) > now
