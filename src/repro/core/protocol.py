"""The DUP protocol state machine (Figure 3 of the paper).

The protocol is implemented as pure state plus *step* functions so that it
can be driven both synchronously (unit / property tests) and by the
discrete-event engine (which turns continuation payloads into real
messages with latency and hop cost).

Per-node state is the subscriber list ``S_list``.  The transitions:

- ``ensure_subscribed(n)`` — Figure 3 (A): when node *n* finds itself
  interested and not yet in its own list, it subscribes.
- ``drop_subscription(n)`` — Figure 3 (D): node *n* lost interest.
- ``step(node, payload)`` — Figure 3 (B), (C), (E): processing of a
  ``subscribe`` / ``substitute`` / ``unsubscribe`` payload arriving at
  ``node`` from downstream.  Returns the payloads that must continue to
  ``node``'s parent (possibly transformed) plus any subscribers that were
  newly added at ``node`` (candidates for an immediate push of the current
  index).

Two deliberate deviations from the paper's pseudocode, both discussed in
DESIGN.md:

1. In ``process unsubscribe``, when the list becomes empty the paper
   forwards ``unsubscribe(N_i)`` (the processing node).  Upstream lists,
   however, hold the id this node last *advertised* — which for a pure
   relay is the removed subject, never the relay itself (the paper's own
   walk-through in Section III-B forwards ``unsubscribe(N6)`` unchanged
   along the virtual path).  We therefore forward the removed subject.
2. In ``process subscribe``, when the list grows from one to two and the
   previous single member was the node itself, the mandated
   ``substitute(N_k, N_i)`` would be a no-op ``substitute(n, n)``; we
   suppress it to avoid charging hops for messages that change nothing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.core.subscriber_list import SubscriberList
from repro.errors import SubscriptionError
from repro.net.message import (
    RefreshSubscribe,
    Subscribe,
    Substitute,
    Unsubscribe,
)

NodeId = int
Payload = object  # Subscribe | Unsubscribe | Substitute | RefreshSubscribe


@dataclass
class StepResult:
    """Outcome of processing one control payload at one node.

    Attributes
    ----------
    upstream:
        Payloads to forward to the node's parent (empty when the payload
        terminated here).
    new_subscribers:
        Ids just added to this node's subscriber list (other than the node
        itself) — candidates for an immediate push of the current index.
    """

    upstream: list[Payload] = field(default_factory=list)
    new_subscribers: list[NodeId] = field(default_factory=list)

    def merge(self, other: "StepResult") -> None:
        """Fold another result into this one."""
        self.upstream.extend(other.upstream)
        self.new_subscribers.extend(other.new_subscribers)


class DupProtocol:
    """All nodes' DUP state plus the Figure-3 transition functions.

    Parameters
    ----------
    is_root:
        Callable deciding whether a node is the authority (tree root);
        injected so root replacement under churn is reflected live.
    """

    def __init__(self, is_root: Callable[[NodeId], bool]):
        self._is_root = is_root
        self._lists: dict[NodeId, SubscriberList] = {}

    # -- state access ------------------------------------------------------
    def s_list(self, node: NodeId) -> SubscriberList:
        """The node's subscriber list (created empty on first access)."""
        s_list = self._lists.get(node)
        if s_list is None:
            s_list = SubscriberList()
            self._lists[node] = s_list
        return s_list

    def is_subscribed(self, node: NodeId) -> bool:
        """Whether ``node`` is in its own subscriber list (Figure 3 (A))."""
        return node in self.s_list(node)

    def in_dup_tree(self, node: NodeId) -> bool:
        """Whether ``node`` forwards pushes (root, or >= 2 subscribers)."""
        return self._is_root(node) or len(self.s_list(node)) >= 2

    def push_targets(self, node: NodeId) -> tuple[NodeId, ...]:
        """Who ``node`` pushes a received/issued update to (never itself)."""
        return tuple(n for n in self.s_list(node) if n != node)

    def advertisement(self, node: NodeId) -> "NodeId | None":
        """What ``node`` currently advertises upstream (None if nothing).

        A DUP-tree interior node (>= 2 entries) advertises itself; a
        relay advertises its single entry; an empty list advertises
        nothing.
        """
        s_list = self.s_list(node)
        if len(s_list) == 0:
            return None
        if len(s_list) >= 2:
            return node
        return s_list.first

    def peek_entries(self, node: NodeId) -> "tuple[NodeId, ...]":
        """Snapshot of ``node``'s list without creating state for it.

        The crash-restart amnesia snapshot must not leave an empty list
        behind for nodes that held nothing (that would perturb the
        iteration order of :meth:`nodes_with_state`).
        """
        s_list = self._lists.get(node)
        return () if s_list is None else s_list.snapshot()

    def nodes_with_state(self) -> tuple[NodeId, ...]:
        """All nodes holding a non-empty subscriber list."""
        return tuple(n for n, lst in self._lists.items() if len(lst) > 0)

    def drop_node(self, node: NodeId) -> SubscriberList:
        """Remove and return ``node``'s state (departure/failure)."""
        return self._lists.pop(node, SubscriberList())

    def adopt_entries(self, node: NodeId, entries: Iterable[NodeId]) -> None:
        """Merge inherited subscriber entries into ``node``'s list.

        Used by churn maintenance when a neighbor takes over a departed
        node's key space (paper: "N_j acts as N_i").
        """
        s_list = self.s_list(node)
        for entry in entries:
            if entry != node:
                s_list.add(entry)

    # -- Figure 3 (A): node-initiated subscription ---------------------------
    def ensure_subscribed(self, node: NodeId) -> StepResult:
        """Subscribe ``node`` itself; no-op if already subscribed."""
        if self.is_subscribed(node):
            return StepResult()
        return self._process_subscribe(node, node)

    # -- Figure 3 (D): node-initiated unsubscription -------------------------
    def drop_subscription(self, node: NodeId) -> StepResult:
        """Unsubscribe ``node`` itself; no-op if not subscribed."""
        if not self.is_subscribed(node):
            return StepResult()
        return self._process_unsubscribe(node, node)

    # -- payload dispatch (Figure 3 (B), (C), (E)) ---------------------------
    def step(self, node: NodeId, payload: Payload) -> StepResult:
        """Process ``payload`` arriving at ``node`` from downstream."""
        if isinstance(payload, Subscribe):
            return self._process_subscribe(payload.subject, node)
        if isinstance(payload, RefreshSubscribe):
            return self._process_refresh(payload.subject, node)
        if isinstance(payload, Unsubscribe):
            return self._process_unsubscribe(payload.subject, node)
        if isinstance(payload, Substitute):
            return self._process_substitute(payload.old, payload.new, node)
        raise SubscriptionError(f"unknown control payload {payload!r}")

    # -- Figure 3: process subscribe -----------------------------------------
    def _process_subscribe(self, subject: NodeId, node: NodeId) -> StepResult:
        result = StepResult()
        s_list = self.s_list(node)
        if self._is_root(node):
            if s_list.add(subject) and subject != node:
                result.new_subscribers.append(subject)
            return result
        previous = s_list.first if len(s_list) == 1 else None
        if not s_list.add(subject):
            # Already listed (e.g. a raced duplicate): nothing to do.
            return result
        if subject != node:
            result.new_subscribers.append(subject)
        if len(s_list) == 1:
            # Had no subscriber, now has one: extend the virtual path.
            result.upstream.append(Subscribe(subject))
        elif len(s_list) == 2:
            # Had one, now two: this node joins the DUP tree and replaces
            # its previous advertisement upstream with itself.
            if previous != node:
                result.upstream.append(Substitute(previous, node))
        # len > 2: already in the DUP tree; no upstream action.
        return result

    # -- failure repair: refresh subscribe -------------------------------------
    def _process_refresh(self, subject: NodeId, node: NodeId) -> StepResult:
        s_list = self.s_list(node)
        if subject in s_list:
            if self.in_dup_tree(node):
                # A live pusher already lists the subject: its own update
                # supply is intact (a failure above it would orphan the
                # node itself, triggering its own refresh), so the chain
                # to the subject is repaired — stop here.
                return StepResult()
            # A relay's knowledge may be a relic of a path through the
            # failed node: keep climbing until a pusher or an unknowing
            # node is found.
            return StepResult(upstream=[RefreshSubscribe(subject)])
        return self._process_subscribe(subject, node)

    # -- Figure 3: process unsubscribe ---------------------------------------
    def _process_unsubscribe(self, subject: NodeId, node: NodeId) -> StepResult:
        result = StepResult()
        s_list = self.s_list(node)
        if not s_list.discard(subject):
            # Unknown subject (race / already cleaned): stop here.
            return result
        if self._is_root(node):
            return result
        if len(s_list) == 0:
            # The virtual path through this node dissolves; upstream nodes
            # list the id this relay advertised — the removed subject.
            result.upstream.append(Unsubscribe(subject))
        elif len(s_list) == 1:
            # Leaves the DUP tree: hand the remaining subscriber to the
            # upstream pusher.  When the node itself is what remains, the
            # mandated substitute(n, n) changes nothing upstream — skip it.
            remaining = s_list.first
            if remaining != node:
                result.upstream.append(Substitute(node, remaining))
        return result

    # -- Figure 3: process substitute -------------------------------------------
    def _process_substitute(
        self, old: NodeId, new: NodeId, node: NodeId
    ) -> StepResult:
        result = StepResult()
        s_list = self.s_list(node)
        s_list.replace(old, new)
        if self._is_root(node):
            return result
        if len(s_list) == 1:
            # Not in the DUP tree: pass the substitution along.
            result.upstream.append(Substitute(old, new))
        return result
