"""The paper's contribution: the DUP dynamic update propagation tree.

This package implements Section III of the paper:

- :mod:`repro.core.interest` — the interest measurement policy ("a node is
  interested iff it received more than ``c`` queries in the last TTL
  interval"), plus an EWMA variant for the ablation study.
- :mod:`repro.core.subscriber_list` — the per-node subscriber list (at most
  one entry per downstream branch, plus the node itself).
- :mod:`repro.core.protocol` — the Figure-3 state machine:
  subscribe / unsubscribe / substitute processing and push-target
  computation.
- :mod:`repro.core.maintenance` — Section III-C: node arrival, departure,
  and the five failure cases.
- :mod:`repro.core.tree_state` — a global invariant checker used by the
  test-suite to verify protocol correctness after arbitrary event
  sequences.
"""

from repro.core.interest import (
    EwmaInterestPolicy,
    InterestPolicy,
    WindowInterestPolicy,
)
from repro.core.leases import LeaseTable
from repro.core.protocol import DupProtocol, StepResult
from repro.core.subscriber_list import SubscriberList
from repro.core.tree_state import check_dup_invariants, push_reachable

__all__ = [
    "DupProtocol",
    "EwmaInterestPolicy",
    "InterestPolicy",
    "LeaseTable",
    "StepResult",
    "SubscriberList",
    "WindowInterestPolicy",
    "check_dup_invariants",
    "push_reachable",
]
