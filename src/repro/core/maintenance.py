"""Node arrival, departure, and failure handling (paper Section III-C).

The underlying peer-to-peer protocol repairs the index search tree itself;
DUP "only makes necessary adjustments to the tree when the topology
changes".  This module performs both in one atomic step per event:

- **Arrival** (:meth:`DupMaintenance.node_joined_edge` /
  :meth:`~DupMaintenance.node_joined_leaf`): a joining node lands either
  on an existing search path (inheriting the subscriber entries that now
  route through it — one notification hop) or outside every virtual path
  (no DUP action).
- **Departure** (:meth:`~DupMaintenance.node_left`): a neighbor absorbs
  the leaver's key space and "acts as" it; the leaver's subscriber entries
  are handed over and, when the absorber's upstream advertisement changes,
  a corrective ``substitute`` travels up.  A departing *end node of a
  virtual path* instead clears its path with an ``unsubscribe`` (the
  paper's stated exception).
- **Failure** (:meth:`~DupMaintenance.node_failed`): the crashed node's
  state is lost.  Its upstream virtual-path neighbor detects the failure
  and emits ``unsubscribe(failed)`` (paper failure case 2); every node the
  failed node pushed to re-establishes its path with a *refresh subscribe*
  (cases 3 and 4).  Case 1 (node on no virtual path) needs no action, and
  case 5 (the root) is :meth:`~DupMaintenance.root_failed`.

Control flows are emitted through an injected ``emit(from_node, payload)``
callback so the same logic runs under the discrete-event engine (real
messages, hop charges, latencies) and under the synchronous walker used by
the protocol tests.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.core.protocol import DupProtocol
from repro.core.subscriber_list import SubscriberList
from repro.errors import TopologyError
from repro.net.message import RefreshSubscribe, Subscribe, Substitute, Unsubscribe
from repro.topology.tree import SearchTree

NodeId = int
EmitUpstream = Callable[[NodeId, object], None]
ChargeHops = Callable[[int], None]


def _advertisement(s_list: SubscriberList, node: NodeId) -> Optional[NodeId]:
    """What ``node`` currently advertises to its parent (None if nothing)."""
    if len(s_list) == 0:
        return None
    if len(s_list) >= 2:
        return node
    return s_list.first


class DupMaintenance:
    """Applies churn events to the search tree and the DUP state.

    Parameters
    ----------
    protocol:
        The global DUP state machine.
    tree:
        The index search tree (mutated in place by churn events).
    emit:
        ``emit(from_node, payload)`` delivers a control payload from
        ``from_node`` to its parent (one charged hop, then normal
        Figure-3 processing and forwarding).
    charge:
        Charges bookkeeping hops that are not Figure-3 flows (the join
        notification); defaults to a no-op.
    recorder:
        Optional :class:`repro.flightrec.FlightRecorder`; tree grafts,
        prunes, substitutes, and re-rootings emit structured events.
    """

    def __init__(
        self,
        protocol: DupProtocol,
        tree: SearchTree,
        emit: EmitUpstream,
        charge: Optional[ChargeHops] = None,
        recorder=None,
    ):
        self._protocol = protocol
        self._tree = tree
        self._emit = emit
        self._charge = charge or (lambda hops: None)
        self._recorder = recorder

    def _record(self, kind: str, node=None, subject=None, detail="") -> None:
        if self._recorder is not None:
            self._recorder.record(kind, node, subject, detail)

    # -- arrival ------------------------------------------------------------
    def node_joined_edge(
        self, new: NodeId, upper: NodeId, lower: NodeId
    ) -> None:
        """A node joins on the edge between ``upper`` and ``lower``.

        ``new`` takes over the part of ``upper``'s key space that routes
        toward ``lower``, so the subscriber entries of ``upper`` that live
        in that branch now also route through ``new`` (paper: "N3 notifies
        N3' that N6 is in its subscriber list; N3' inserts N6 ... and
        becomes an intermediate node in the virtual path").
        """
        inherited = [
            entry
            for entry in self._protocol.s_list(upper)
            if entry != upper and self._routes_through(upper, entry, lower)
        ]
        self._tree.insert_on_edge(upper, lower, new)
        self._record(
            "tree-graft",
            node=new,
            subject=upper,
            detail=f"edge lower={lower} inherited={len(inherited)}",
        )
        if inherited:
            self._protocol.adopt_entries(new, inherited)
            self._charge(1)  # upper -> new handover notification

    def node_joined_leaf(self, parent: NodeId, new: NodeId) -> None:
        """A node joins outside every virtual path: no DUP action needed."""
        self._tree.add_leaf(parent, new)
        self._record("tree-graft", node=new, subject=parent, detail="leaf")

    # -- graceful departure -----------------------------------------------------
    def node_left(self, node: NodeId) -> None:
        """A node announces its departure and hands over its state."""
        if node == self._tree.root:
            raise TopologyError("use root_failed/replace for the root")
        s_node = self._protocol.s_list(node)
        if len(s_node) == 1 and node in s_node:
            # Paper's exception: the end node of a virtual path clears its
            # path before leaving.
            self._emit(node, Unsubscribe(node))
            self._protocol.drop_node(node)
            self._tree.splice_out(node)
            self._record("tree-prune", node=node, detail="left end-node")
            return

        entries = [entry for entry in s_node.snapshot() if entry != node]
        self._protocol.drop_node(node)
        parent = self._tree.splice_out(node)
        self._record(
            "tree-prune",
            node=node,
            subject=parent,
            detail=f"left entries={len(entries)}",
        )
        if not entries:
            return  # the node was on no virtual path (or only self-subscribed)

        parent_list = self._protocol.s_list(parent)
        pre_adv = _advertisement(parent_list, parent)
        parent_list.discard(node)
        self._protocol.adopt_entries(parent, entries)
        self._charge(1)  # node -> parent handover notification
        post_adv = _advertisement(parent_list, parent)
        if (
            parent != self._tree.root
            and pre_adv is not None
            and post_adv is not None
            and pre_adv != post_adv
        ):
            # The absorber's upstream advertisement changed (e.g. it now
            # represents the branch itself): correct the upstream lists.
            self._record(
                "tree-substitute",
                node=parent,
                subject=pre_adv,
                detail=f"{pre_adv}->{post_adv}",
            )
            self._emit(parent, Substitute(pre_adv, post_adv))

    # -- failure ----------------------------------------------------------------
    def node_failed(self, node: NodeId) -> list[NodeId]:
        """A node crashes without warning; returns the orphans that repair.

        The crashed node's subscriber list is *lost* to the survivors; it
        is consulted here only to decide which surviving nodes detect the
        failure — exactly the nodes the paper designates as detectors
        (the upstream virtual-path neighbor and the push recipients).
        """
        if node == self._tree.root:
            raise TopologyError("use root_failed for the root")
        s_node = self._protocol.drop_node(node)
        parent = self._tree.splice_out(node)
        orphans = [entry for entry in s_node if entry != node]
        self._record(
            "tree-prune",
            node=node,
            subject=parent,
            detail=f"failed orphans={len(orphans)}",
        )
        # Failure case 2: the upstream virtual-path neighbor notices that
        # its branch through the failed node went silent.
        if node in self._protocol.s_list(parent):
            self._emit_local_unsubscribe(parent, node)
        # Failure cases 3 and 4: every node the failed one pushed to
        # re-establishes its virtual path.
        for orphan in orphans:
            self._emit(orphan, RefreshSubscribe(orphan))
        return orphans

    def root_failed(self, new_root: NodeId) -> None:
        """The authority fails; ``new_root`` takes over (failure case 5).

        The old root's indices and subscriber list are lost.  Each direct
        child holding virtual-path state re-registers its advertisement
        with the new root ("N2 can still setup the virtual path and inform
        the new root that it should push the index to N3").
        """
        old_root = self._tree.root
        self._protocol.drop_node(old_root)
        self._tree.replace_root(new_root)
        self._record(
            "failover-reroot",
            node=new_root,
            subject=old_root,
            detail="fresh-root",
        )
        for child in self._tree.children(new_root):
            s_child = self._protocol.s_list(child)
            advertisement = _advertisement(s_child, child)
            if advertisement is not None:
                self._emit(child, Subscribe(advertisement))

    def promote_root(self, standby: NodeId) -> None:
        """The authority fails; an *existing tree node* takes over.

        The standby-failover variant of :meth:`root_failed`: the successor
        is not a fresh node but a standby already holding a position (and
        possibly DUP state) in the tree.  The standby's old position is
        spliced out exactly like a graceful departure — its subscriber
        entries hand over to the absorbing parent, with the same
        advertisement correction — and it is then installed as the root.
        The old root's state is lost with it; each direct child of the new
        root re-registers its advertisement (failure case 5).
        """
        old_root = self._tree.root
        if standby == old_root:
            raise TopologyError(f"standby {standby} is already the root")
        s_standby = self._protocol.s_list(standby)
        end_node = len(s_standby) == 1 and standby in s_standby
        entries = [e for e in s_standby.snapshot() if e != standby]
        self._protocol.drop_node(old_root)
        self._protocol.drop_node(standby)
        absorber = self._tree.promote_to_root(standby)
        self._record(
            "failover-reroot",
            node=standby,
            subject=old_root,
            detail=f"standby absorber={absorber}",
        )
        if absorber == old_root:
            # The standby was a direct child of the dead root: its former
            # children are its own children now, so it keeps serving their
            # virtual paths from the root position.
            if entries:
                self._protocol.adopt_entries(standby, entries)
        elif end_node:
            # The standby was the end node of a virtual path; as the root
            # it no longer needs one — clear the stale path upward.
            self._emit_local_unsubscribe(absorber, standby)
        elif entries:
            absorber_list = self._protocol.s_list(absorber)
            pre_adv = _advertisement(absorber_list, absorber)
            absorber_list.discard(standby)
            self._protocol.adopt_entries(absorber, entries)
            self._charge(1)  # standby -> absorber handover notification
            post_adv = _advertisement(absorber_list, absorber)
            if (
                absorber != self._tree.root
                and pre_adv is not None
                and post_adv is not None
                and pre_adv != post_adv
            ):
                self._record(
                    "tree-substitute",
                    node=absorber,
                    subject=pre_adv,
                    detail=f"{pre_adv}->{post_adv}",
                )
                self._emit(absorber, Substitute(pre_adv, post_adv))
        for child in self._tree.children(standby):
            s_child = self._protocol.s_list(child)
            advertisement = _advertisement(s_child, child)
            if advertisement is not None:
                self._emit(child, Subscribe(advertisement))

    # -- crash-restart ----------------------------------------------------------
    def node_rejoined(
        self,
        node: NodeId,
        parent: NodeId,
        entries: "tuple[NodeId, ...]",
        entry_valid: "Optional[Callable[[NodeId], bool]]" = None,
    ) -> "tuple[list[NodeId], list[NodeId]]":
        """A crashed node returns holding its pre-crash state; reconcile.

        The rejoiner's amnesia semantics are explicit: ``entries`` is the
        subscriber list it still holds from before the crash.  Each entry
        is re-validated — it must still be in the overlay, its virtual
        path must still route through ``node`` (a survivor repair may
        have moved the branch, or the node itself may have been spliced
        out and re-grafted elsewhere), and ``entry_valid`` (the scheme's
        live-lease check) must accept it.  Valid entries are adopted
        back; the rest are *excised*, exactly the records the
        consistency auditor would otherwise flag as dangling or stray.
        The reconciled advertisement is re-announced upstream with a
        ``RefreshSubscribe`` so the virtual path above the rejoiner is
        re-validated end to end (refresh is idempotent: it stops at the
        first node already pushing to the advertisement).

        Returns ``(kept, excised)``.
        """
        if node not in self._tree:
            # A survivor detected the crash and spliced the node out;
            # it returns as a leaf under ``parent``.
            self._tree.add_leaf(parent, node)
            self._record("tree-graft", node=node, subject=parent, detail="rejoin")
        kept: list[NodeId] = []
        excised: list[NodeId] = []
        for entry in entries:
            if entry == node:
                # Self-subscription: interest is the scheme's call; it
                # pre-filters lapsed interest before handing us entries.
                kept.append(entry)
                continue
            valid = (
                entry in self._tree
                and self._tree.on_path_to_root(entry, node)
                and (entry_valid is None or entry_valid(entry))
            )
            (kept if valid else excised).append(entry)
        # Rebuild the node's list from the validated survivors: whatever
        # the protocol currently holds for it (possibly nothing — the
        # failure repair dropped it) is replaced by the reconciled state.
        self._protocol.drop_node(node)
        others = [entry for entry in kept if entry != node]
        if others:
            self._protocol.adopt_entries(node, others)
        if node in kept:
            # adopt_entries skips self-entries; restore the surviving
            # self-subscription directly.
            self._protocol.s_list(node).add(node)
        for entry in excised:
            self._record("stale-excise", node=node, subject=entry)
        self._record(
            "rejoin-reconcile",
            node=node,
            subject=parent,
            detail=f"kept={len(kept)} excised={len(excised)}",
        )
        advertisement = _advertisement(self._protocol.s_list(node), node)
        if advertisement is not None:
            self._emit(node, RefreshSubscribe(advertisement))
        return kept, excised

    # -- helpers ------------------------------------------------------------
    def _routes_through(
        self, upper: NodeId, entry: NodeId, lower: NodeId
    ) -> bool:
        """Whether ``entry`` hangs under ``upper``'s branch ``lower``.

        Tolerates stale subscriber entries (a listed node may have left or
        failed concurrently; its cleanup flows are still in flight).
        """
        if entry not in self._tree:
            return False
        try:
            return self._tree.child_branch(upper, entry) == lower
        except TopologyError:
            return False

    def _emit_local_unsubscribe(self, at_node: NodeId, subject: NodeId) -> None:
        """Process an unsubscribe at ``at_node`` itself, then continue up."""
        result = self._protocol.step(at_node, Unsubscribe(subject))
        for payload in result.upstream:
            self._emit(at_node, payload)
