"""Runtime anti-entropy auditor for the DUP tree invariants.

The property tests (``tests/test_dup_tree_invariants.py``) check four
structural invariants of the DUP state after synthetic histories: branch
uniqueness, push acyclicity, interior shape, and exact push coverage.
Under partitions, silent failures, and authority failover those
invariants can be violated *at runtime* — a subscribe lost at the cut
leaves a dangling entry, tree surgery during a partition strands a
subscriber outside its pusher's branch, a failover races an in-flight
substitute into a duplicate pusher.  This module promotes the test-time
invariants into a periodic **audit-and-repair** pass:

- **detect** — each :meth:`ConsistencyAuditor.sweep` re-derives the push
  graph from the live protocol state and records every invariant
  violation as a :class:`Violation`.  Because control payloads are in
  flight between sweeps (a node is briefly "subscribed but unreachable"
  while its subscribe climbs the tree), a finding only *confirms* when
  the same violation persists across two consecutive sweeps — a single
  sighting is a suspicion, not a divergence;
- **repair** — each confirmed violation is answered with the protocol's
  own primitives: a local ``unsubscribe`` step (whose upstream
  continuations travel as real charged control messages) to excise bad
  state, and a ``refresh subscribe`` re-walk (Section III-C's repair
  flow) to rebuild a legitimate subscriber's update supply;
- **measure** — the auditor records the *divergence window* (how long
  the state stayed dirty, from the first confirming sweep to the next
  clean one) and, for disruptions announced via :meth:`note_disruption`
  (partition heals, failovers), the *time to reconvergence* from the
  disruption to the first clean sweep after it.

The auditor is an omniscient observer but a **local repairer**: it reads
global state (as the test oracles do), yet every repair is expressed as
a control flow a real node could emit, routed through the same
functioning-gated emit path the churn maintenance uses — a silently
failed node never originates repair traffic.  With ``audit_interval``
unset the auditor is never constructed and runs are bit-identical to
builds without it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.core.protocol import DupProtocol
from repro.errors import TopologyError
from repro.net.message import RefreshSubscribe, Unsubscribe
from repro.topology.tree import SearchTree

NodeId = int
EmitUpstream = Callable[[NodeId, object], None]
Repair = Callable[[], None]

#: Violation kinds a sweep can report, in check order.
KINDS = (
    "dangling-entry",
    "stray-entry",
    "branch-conflict",
    "push-cycle",
    "split-brain",
    "dead-end",
    "orphan",
)


@dataclass(frozen=True)
class Violation:
    """One invariant violation found by a sweep.

    ``node`` is where the bad state lives (the list holder for entry
    violations, the unsupplied subscriber for orphans); ``subject`` is
    the offending entry/peer when one exists (it keys confirmation
    across sweeps together with ``kind`` and ``node``); ``detail`` is a
    human-readable description.
    """

    kind: str
    node: NodeId
    subject: Optional[NodeId] = None
    detail: str = ""

    @property
    def key(self) -> tuple:
        """Identity for cross-sweep confirmation."""
        return (self.kind, self.node, self.subject)


class ConsistencyAuditor:
    """Periodic detect-and-repair pass over the DUP protocol state.

    Parameters
    ----------
    protocol:
        The live protocol state machine.
    tree:
        The index search tree (read-only here).
    clock:
        Returns the current simulation time (for the histograms).
    emit:
        ``emit(from_node, payload)`` sends a control payload from
        ``from_node`` toward its parent as a real charged message; wire
        this to the scheme's maintenance emit path so the
        functioning-gate applies.
    confirm_sweeps:
        How many consecutive sweeps a finding must recur in before it
        confirms (default 2; 1 disables the suspicion stage — useful in
        synchronous tests where no messages are ever in flight).
    recorder:
        Optional :class:`repro.flightrec.FlightRecorder`; every
        confirmed violation emits an ``audit-detect`` event and every
        executed repair an ``audit-repair`` event (exactly one per
        confirmed violation, so the event count always equals
        :attr:`repairs`).
    """

    def __init__(
        self,
        protocol: DupProtocol,
        tree: SearchTree,
        clock: Callable[[], float],
        emit: EmitUpstream,
        confirm_sweeps: int = 2,
        recorder=None,
    ):
        self._protocol = protocol
        self._tree = tree
        self._clock = clock
        self._emit = emit
        self._recorder = recorder
        self._confirm_sweeps = max(1, confirm_sweeps)
        self.sweeps = 0
        self.clean_sweeps = 0
        self.repairs = 0
        self.violations_by_kind: dict[str, int] = {k: 0 for k in KINDS}
        #: Closed divergence windows (seconds dirty), one per episode.
        self.divergence_windows: list[float] = []
        #: Per announced disruption: seconds until the first clean sweep.
        self.reconvergence_times: list[float] = []
        self._dirty_since: Optional[float] = None
        self._open_disruptions: list[tuple[str, float]] = []
        #: How many consecutive sweeps each suspicion has been seen in.
        self._suspicions: dict[tuple, int] = {}
        self.last_violations: tuple[Violation, ...] = ()

    # -- disruption hooks ---------------------------------------------------
    def note_disruption(self, kind: str) -> None:
        """Announce a disruptive event (partition heal, failover).

        The time from here to the first *clean* sweep is recorded as
        that disruption's reconvergence time.
        """
        self._open_disruptions.append((kind, self._clock()))

    @property
    def total_violations(self) -> int:
        """All confirmed violations across all sweeps."""
        return sum(self.violations_by_kind.values())

    # -- the sweep ----------------------------------------------------------
    def sweep(self) -> list[Violation]:
        """Run all checks, repair confirmed findings, update metrics.

        Returns the *confirmed* violations (those seen in
        ``confirm_sweeps`` consecutive sweeps including this one);
        fresh suspicions wait for the next sweep.
        """
        self.sweeps += 1
        candidates: list[tuple[Violation, Repair]] = []
        self._collect_entry_checks(candidates)
        self._collect_push_checks(candidates)

        seen = {violation.key for violation, _ in candidates}
        streaks = {
            key: self._suspicions.get(key, 0) + 1 for key in seen
        }
        self._suspicions = streaks
        confirmed: list[Violation] = []
        for violation, repair in candidates:
            if streaks[violation.key] < self._confirm_sweeps:
                continue
            confirmed.append(violation)
            self.violations_by_kind[violation.kind] += 1
            if self._recorder is not None:
                self._recorder.record(
                    "audit-detect",
                    node=violation.node,
                    subject=violation.subject,
                    detail=f"{violation.kind}: {violation.detail}",
                )
            repair()
            if self._recorder is not None:
                self._recorder.record(
                    "audit-repair",
                    node=violation.node,
                    subject=violation.subject,
                    detail=violation.kind,
                )
            # Repaired: the streak restarts if the finding ever recurs.
            self._suspicions.pop(violation.key, None)
        self.last_violations = tuple(confirmed)

        now = self._clock()
        if confirmed:
            if self._dirty_since is None:
                self._dirty_since = now
        else:
            self.clean_sweeps += 1
            if self._dirty_since is not None:
                self.divergence_windows.append(now - self._dirty_since)
                self._dirty_since = None
            for _, since in self._open_disruptions:
                self.reconvergence_times.append(now - since)
            self._open_disruptions.clear()
        return confirmed

    # -- entry-level checks -------------------------------------------------
    def _collect_entry_checks(
        self, out: list[tuple[Violation, Repair]]
    ) -> None:
        """Dangling, stray (wrong-branch), and inconsistent entries.

        Because every control payload walks the search-tree path hop by
        hop, a consistent state is *per-hop consistent*: the entry node
        ``n`` holds for branch child ``c`` equals what ``c`` currently
        advertises upstream.  Any other entry is a relic of lost or
        raced control traffic — exactly the divergence a partition
        leaves behind — and excising the mismatching entry (never the
        advertised one) is what makes the repair convergent: a stranded
        subscriber's re-walk re-creates the advertised entry, not the
        relic.
        """
        tree = self._tree
        protocol = self._protocol
        for node in protocol.nodes_with_state():
            if node not in tree:
                continue  # awaiting failure detection; not repairable here
            for member in tuple(protocol.s_list(node)):
                if member == node:
                    continue
                if member not in tree:
                    out.append(
                        (
                            Violation(
                                "dangling-entry",
                                node,
                                member,
                                f"{node} lists departed node {member}",
                            ),
                            self._excise(node, member, rewalk=False),
                        )
                    )
                    continue
                if node == tree.root:
                    # Every non-root node hangs under some branch of the
                    # root; no branch constraint applies beyond that.
                    continue
                try:
                    branch = tree.child_branch(node, member)
                except TopologyError:
                    out.append(
                        (
                            Violation(
                                "stray-entry",
                                node,
                                member,
                                f"{member} no longer routes through {node}",
                            ),
                            self._excise(node, member, rewalk=True),
                        )
                    )
                    continue
                advertised = protocol.advertisement(branch)
                if advertised != member:
                    out.append(
                        (
                            Violation(
                                "branch-conflict",
                                node,
                                member,
                                f"{node} lists {member} on branch "
                                f"{branch}, which advertises "
                                f"{advertised}",
                            ),
                            self._excise(node, member, rewalk=True),
                        )
                    )

    # -- push-graph checks --------------------------------------------------
    def _collect_push_checks(
        self, out: list[tuple[Violation, Repair]]
    ) -> None:
        """Cycles, duplicate pushers, dead-end leaves, orphans."""
        protocol = self._protocol
        tree = self._tree
        root = tree.root

        # Rebuild the push graph exactly as the delivery code walks it.
        edges: list[tuple[NodeId, NodeId]] = []
        frontier = [root]
        visited = {root}
        while frontier:
            sender = frontier.pop()
            if sender != root and not protocol.in_dup_tree(sender):
                continue
            for target in protocol.push_targets(sender):
                edges.append((sender, target))
                if target not in visited:
                    visited.add(target)
                    frontier.append(target)

        outgoing: dict[NodeId, list[NodeId]] = {}
        pushers: dict[NodeId, list[NodeId]] = {}
        for sender, target in edges:
            outgoing.setdefault(sender, []).append(target)
            pushers.setdefault(target, []).append(sender)

        # Cycles: iterative DFS with back-edge detection; each back edge
        # is cut at its sender and the stranded target re-walked.
        cut: set[tuple[NodeId, NodeId]] = set()
        WHITE, GREY, BLACK = 0, 1, 2
        color: dict[NodeId, int] = {}
        for start in list(outgoing):
            if color.get(start, WHITE) != WHITE:
                continue
            stack = [(start, iter(outgoing.get(start, ())))]
            color[start] = GREY
            while stack:
                node, children = stack[-1]
                advanced = False
                for child in children:
                    state = color.get(child, WHITE)
                    if state == GREY:
                        out.append(
                            (
                                Violation(
                                    "push-cycle",
                                    node,
                                    child,
                                    f"push edge {node} -> {child} closes "
                                    "a cycle",
                                ),
                                self._excise(node, child, rewalk=True),
                            )
                        )
                        cut.add((node, child))
                        continue
                    if state == WHITE:
                        color[child] = GREY
                        stack.append(
                            (child, iter(outgoing.get(child, ())))
                        )
                        advanced = True
                        break
                if not advanced:
                    color[node] = BLACK
                    stack.pop()

        # Split brain: a node fed by more than one pusher receives every
        # update twice — the signature of a promotion racing a repair.
        for target, sources in pushers.items():
            keep = [s for s in sources if (s, target) not in cut]
            for extra in keep[1:]:
                out.append(
                    (
                        Violation(
                            "split-brain",
                            target,
                            extra,
                            f"{target} is pushed to by both {keep[0]} "
                            f"and {extra}",
                        ),
                        self._excise(extra, target, rewalk=False),
                    )
                )

        # Dead ends: a push-graph leaf that is not itself subscribed
        # consumes updates nobody asked it to hold.
        senders = set(outgoing)
        for target, sources in pushers.items():
            if target in senders or protocol.is_subscribed(target):
                continue
            if any((s, target) in cut for s in sources):
                continue  # already handled by the cycle repair
            out.append(
                (
                    Violation(
                        "dead-end",
                        target,
                        None,
                        f"push dead-ends at {target}, which is not "
                        "subscribed",
                    ),
                    self._cut_dead_end(target, tuple(sources)),
                )
            )

        # Orphans: subscribed nodes the push graph never reaches.
        reached = {t for _, t in edges}
        for node in protocol.nodes_with_state():
            if node == root or node not in tree:
                continue
            if protocol.is_subscribed(node) and node not in reached:
                out.append(
                    (
                        Violation(
                            "orphan",
                            node,
                            None,
                            f"subscriber {node} is unreachable by pushes",
                        ),
                        self._rewalk_thunk(node),
                    )
                )

    # -- repairs ------------------------------------------------------------
    def _stranded(self, member: NodeId) -> Optional[NodeId]:
        """The live party whose update supply hangs off ``member``.

        Follows the advertisement chain (a relay advertises its sole
        entry) until it reaches a node that supplies itself — one that
        is subscribed or a DUP-tree interior — and returns it; ``None``
        when the chain dies out (nothing real was stranded).
        """
        protocol = self._protocol
        current: Optional[NodeId] = member
        seen: set[NodeId] = set()
        while current is not None and current not in seen:
            if current in self._tree and (
                protocol.is_subscribed(current)
                or protocol.in_dup_tree(current)
            ):
                return current
            seen.add(current)
            current = protocol.advertisement(current)
        return None

    def _excise(self, node: NodeId, member: NodeId, rewalk: bool) -> Repair:
        """A repair dropping ``member`` from ``node``'s list.

        The unsubscribe is processed at ``node`` itself (the auditor's
        finding *is* the node's local knowledge) and its continuations
        travel upstream as real messages.  With ``rewalk`` the live
        subscriber stranded behind the excised entry (if any) then
        re-establishes its virtual path.
        """

        def repair() -> None:
            self.repairs += 1
            result = self._protocol.step(node, Unsubscribe(member))
            for payload in result.upstream:
                self._emit(node, payload)
            if rewalk:
                stranded = self._stranded(member)
                if stranded is not None:
                    self._do_rewalk(stranded)

        return repair

    def _cut_dead_end(
        self, target: NodeId, sources: tuple[NodeId, ...]
    ) -> Repair:
        """A repair removing a dead-end push leaf from all its pushers."""

        def repair() -> None:
            self.repairs += 1
            for sender in sources:
                result = self._protocol.step(sender, Unsubscribe(target))
                for payload in result.upstream:
                    self._emit(sender, payload)
            # The dead end may still relay for a legitimate subscriber:
            # re-walk whoever is stranded behind it so that path
            # survives the cut.
            stranded = self._stranded(target)
            if stranded is not None and stranded != target:
                self._do_rewalk(stranded)

        return repair

    def _rewalk_thunk(self, node: NodeId) -> Repair:
        def repair() -> None:
            self.repairs += 1
            self._do_rewalk(node)

        return repair

    def _do_rewalk(self, node: NodeId) -> None:
        """Re-establish ``node``'s update supply (Section III-C repair)."""
        self._emit(node, RefreshSubscribe(node))

    # -- reporting ----------------------------------------------------------
    def summary(self) -> dict[str, object]:
        """Aggregate audit statistics for result extras."""
        out: dict[str, object] = {
            "audit_sweeps": self.sweeps,
            "audit_clean_sweeps": self.clean_sweeps,
            "audit_violations": self.total_violations,
            "audit_repairs": self.repairs,
        }
        for kind in KINDS:
            count = self.violations_by_kind[kind]
            if count:
                out[f"audit_{kind.replace('-', '_')}"] = count
        if self.divergence_windows:
            windows = sorted(self.divergence_windows)
            out["audit_divergence_max"] = windows[-1]
            out["audit_divergence_p50"] = windows[len(windows) // 2]
        if self.reconvergence_times:
            times = sorted(self.reconvergence_times)
            out["audit_reconvergence_max"] = times[-1]
            out["audit_reconvergence_p50"] = times[len(times) // 2]
        return out
