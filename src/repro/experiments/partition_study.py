"""Partition study: divergence and reconvergence under network splits.

The paper's evaluation never cuts the network: every DUP repair message
reaches its destination, so the hard-state tree can only diverge for one
message latency.  This experiment partitions the overlay and crashes the
authority *inside* the partition — the worst case for a hard-state
protocol, because subscriptions, repairs, and the failover hand-off all
race the cut — and sweeps the partition duration for four variants on
the same seeds:

- ``dup-reliable`` — DUP with the full resilience stack (acked/retried
  control traffic, leases, silent failures) plus authority standbys and
  the runtime consistency auditor.  The crash is *silent*: standbys must
  starve on heartbeats before one promotes itself.
- ``dup-oracle`` — DUP with oracle failure detection: the crash promotes
  a standby immediately and repair flows fire instantly.  The benign
  upper bound the detection machinery is measured against.
- ``cup`` / ``pcx`` — the soft-state baselines under the same partition
  and (oracle) crash; their state self-heals within a TTL, which is
  exactly the latency/staleness trade the study quantifies.

Every sweep point is built by applying a :class:`ChaosScenario` (one
partition window opening 300 s after warm-up, the authority crashing at
its midpoint, two standbys, the auditor sweeping every 150 s) to the
variant's base configuration, so the CLI's ``repro-dup chaos`` replays
single points of this grid.

Reported per (partition duration, variant): latency, cost per query,
stale-read fraction, incomplete queries, cross-cut drops, whether the
failover fired and when, and — for the DUP variants — the auditor's
violation/repair counts and time-to-reconvergence percentiles.
"""

from __future__ import annotations

import math

from repro.engine.chaos import ChaosScenario
from repro.engine.runner import replicate_many
from repro.experiments.common import base_config
from repro.experiments.spec import ExperimentResult, ShapeCheck

EXPERIMENT_ID = "partition"
TITLE = "DUP under partitions and in-partition authority failure"

#: Partition durations (seconds) per sweep level.
BENCH_DURATIONS = (60.0, 300.0, 900.0)
SMOKE_DURATIONS = (60.0,)
#: The partition opens this long after warm-up ends.
PARTITION_OFFSET = 300.0
#: Network-wide query rate (matches the resilience study: high enough
#: that the DUP tree is populated and pushes flow every TTL cycle).
RATE = 3.0
#: Resilience-stack parameters for the ``dup-reliable`` variant.
RETRY_BUDGET = 4
ACK_TIMEOUT = 2.0
#: Failover and audit cadence shared by every variant.
STANDBYS = 2
FAILOVER_TIMEOUT = 120.0
AUDIT_INTERVAL = 150.0

VARIANTS = ("dup-reliable", "dup-oracle", "cup", "pcx")


def _smoke_config(seed: int) -> "object":
    """A CI-sized base: one minute of wall clock for the whole sweep."""
    return base_config(
        "quick",
        seed=seed,
        num_nodes=64,
        ttl=600.0,
        push_lead=60.0,
        warmup=900.0,
        duration=3600.0,
    )


def _scenario(duration: float, silent: bool) -> ChaosScenario:
    """One sweep point: a partition with the authority dying inside it."""
    return ChaosScenario(
        name=f"partition-{duration:g}s",
        description="partition sweep point (see partition_study)",
        partitions=((PARTITION_OFFSET, duration, 2),),
        crash_offset=PARTITION_OFFSET + duration / 2.0,
        silent_failures=silent,
        standbys=STANDBYS,
        failover_timeout=FAILOVER_TIMEOUT,
        audit_interval=AUDIT_INTERVAL,
    )


def _variant_config(base, variant: str, duration: float):
    if variant == "dup-reliable":
        configured = base.replace(
            scheme="dup",
            retry_budget=RETRY_BUDGET,
            ack_timeout=ACK_TIMEOUT,
            lease_ttl=base.ttl / 2.0,
        )
        return _scenario(duration, silent=True).apply(configured)
    scheme = {"dup-oracle": "dup"}.get(variant, variant)
    return _scenario(duration, silent=False).apply(
        base.replace(scheme=scheme)
    )


def _mean(values) -> float:
    values = [v for v in values if not math.isnan(v)]
    if not values:
        return float("nan")
    return sum(values) / len(values)


def run(
    scale: str = "bench",
    replications: int = 2,
    seed: int = 1,
    durations=None,
    rate: float = RATE,
    workers=None,
) -> ExperimentResult:
    """Sweep the partition duration for every variant."""
    if durations is None:
        durations = SMOKE_DURATIONS if scale == "smoke" else BENCH_DURATIONS
    base = (
        _smoke_config(seed) if scale == "smoke" else base_config(scale, seed=seed)
    ).replace(query_rate=rate)

    results = replicate_many(
        {
            (duration, variant): _variant_config(base, variant, duration)
            for duration in durations
            for variant in VARIANTS
        },
        replications,
        workers=workers,
        experiment=EXPERIMENT_ID,
    )
    rows = []
    for (duration, variant), aggregated in results.items():
        runs = aggregated.runs
        extras = [dict(r.extras) for r in runs]

        def total(key):
            return sum(int(e.get(key, 0)) for e in extras)

        rows.append(
            {
                "partition_s": duration,
                "variant": variant,
                "latency": aggregated.latency.mean,
                "cost": aggregated.cost.mean,
                "stale_frac": _mean(
                    [r.stale_read_fraction for r in runs]
                ),
                "incomplete": sum(r.incomplete_queries for r in runs),
                "cut_drops": total("partition_drops"),
                "failovers": sum(
                    1 for e in extras if e.get("failover_promoted", -1) >= 0
                ),
                "failover_at": _mean(
                    [float(e.get("failover_at", "nan")) for e in extras]
                ),
                "violations": total("audit_violations"),
                "repairs": total("audit_repairs"),
                "reconv_p50": _mean(
                    [
                        float(e.get("audit_reconvergence_p50", "nan"))
                        for e in extras
                    ]
                ),
                "reconv_max": _mean(
                    [
                        float(e.get("audit_reconvergence_max", "nan"))
                        for e in extras
                    ]
                ),
            }
        )

    checks = _shape_checks(durations, results)
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        rows=rows,
        shape_checks=tuple(checks),
        notes=(
            "No paper figure exists for partitions; this probes the "
            "implicit assumption that repair traffic always gets "
            "through.  'dup-oracle' is the instant-detection upper "
            "bound; the crash always lands inside the partition window."
        ),
    )


def _shape_checks(durations, results):
    checks = []
    probe = max(durations)

    cut_drops = sum(
        int(r.extras.get("partition_drops", 0))
        for variant in VARIANTS
        for r in results[(probe, variant)].runs
    )
    checks.append(
        ShapeCheck(
            claim=(
                f"the {probe:g}s partition actually cuts traffic "
                "(cross-component messages dropped-but-charged)"
            ),
            passed=cut_drops > 0,
            detail=f"cut_drops={cut_drops}",
        )
    )

    reliable = results[(probe, "dup-reliable")].runs
    promoted = sum(
        1
        for r in reliable
        if int(r.extras.get("failover_promoted", -1)) >= 0
    )
    checks.append(
        ShapeCheck(
            claim=(
                "every dup-reliable run detects the silent authority "
                "crash and promotes a standby"
            ),
            passed=promoted == len(reliable),
            detail=f"promoted={promoted}/{len(reliable)}",
        )
    )

    oracle = results[(probe, "dup-oracle")].runs
    crash_at = None
    for r in oracle:
        at = r.extras.get("failover_at")
        crash_at = float(at) if at is not None else float("nan")
        break
    expected = (
        results[(probe, "dup-oracle")]
        .runs[0]
        .config.authority_crash_at
    )
    checks.append(
        ShapeCheck(
            claim=(
                "oracle failover is instantaneous (promotion at the "
                "crash time itself)"
            ),
            passed=crash_at is not None and crash_at == expected,
            detail=f"failover_at={crash_at} crash_at={expected}",
        )
    )

    reconverged = sum(
        1
        for r in reliable
        if math.isfinite(
            float(r.extras.get("audit_reconvergence_max", "nan"))
        )
    )
    checks.append(
        ShapeCheck(
            claim=(
                "the auditor certifies reconvergence for every "
                "dup-reliable run (a clean sweep after the partition "
                "heals and the failover completes)"
            ),
            passed=reconverged == len(reliable),
            detail=f"reconverged={reconverged}/{len(reliable)}",
        )
    )
    return checks
