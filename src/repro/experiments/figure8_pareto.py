"""Figure 8: the effects of Pareto (bursty) query arrivals.

The paper replaces the exponential inter-arrival times with the
heavy-tailed Pareto distribution (alpha in {1.05, 1.20}; smaller alpha =
burstier) and finds that (a) DUP keeps beating CUP, (b) *everything*
performs better under the burstier alpha=1.05 — bursts mean many queries
land while a fetched copy is still fresh — and (c) at very high bursty
rates the push schemes' relative cost can tick up slightly because
interest flaps between bursts and idle periods, wasting some pushes.
"""

from __future__ import annotations

from repro.engine.runner import compare_many
from repro.experiments.common import PAPER_SCHEMES, base_config
from repro.experiments.spec import ExperimentResult, ShapeCheck

EXPERIMENT_ID = "figure8"
TITLE = "Effects of Pareto (bursty) arrivals"

ALPHAS = (1.05, 1.20)
BENCH_RATES = (0.3, 1.0, 3.0, 10.0, 30.0)
PAPER_RATES = (0.3, 1.0, 3.0, 10.0, 30.0, 100.0)


def run(
    scale: str = "bench",
    replications: int = 2,
    seed: int = 1,
    alphas=ALPHAS,
    rates=None,
    workers=None,
) -> ExperimentResult:
    """Regenerate Figure 8 (a) and (b)."""
    if rates is None:
        rates = PAPER_RATES if scale in ("quick", "paper") else BENCH_RATES
    comparisons = compare_many(
        {
            (alpha, rate): base_config(
                scale,
                seed=seed,
                arrival="pareto",
                pareto_alpha=alpha,
                query_rate=rate,
            )
            for alpha in alphas
            for rate in rates
        },
        PAPER_SCHEMES,
        replications,
        workers=workers,
        experiment=EXPERIMENT_ID,
    )

    rows = []
    for alpha in alphas:
        for rate in rates:
            comparison = comparisons[(alpha, rate)]
            row = {"alpha": alpha, "lambda": rate}
            for scheme in PAPER_SCHEMES:
                row[f"latency_{scheme}"] = comparison.latency(scheme).mean
            for scheme in ("cup", "dup"):
                row[f"relcost_{scheme}"] = comparison.relative_cost[
                    scheme
                ].mean
            rows.append(row)

    checks = []
    for alpha in alphas:
        for rate in rates:
            comparison = comparisons[(alpha, rate)]
            dup = comparison.latency("dup").mean
            cup = comparison.latency("cup").mean
            checks.append(
                ShapeCheck(
                    claim=(
                        f"DUP latency <= CUP at alpha={alpha:g}, "
                        f"lambda={rate:g} (Fig 8a)"
                    ),
                    passed=dup <= cup * 1.05 + 1e-9,
                    detail=f"dup={dup:.4g} cup={cup:.4g}",
                )
            )
    # Burstiness helps: alpha=1.05 latency below alpha=1.20 for PCX at
    # most rates ("the query burstyness improves the system performance").
    wins = 0
    for rate in rates:
        bursty = comparisons[(1.05, rate)].latency("pcx").mean
        smooth = comparisons[(1.20, rate)].latency("pcx").mean
        if bursty <= smooth * 1.05:
            wins += 1
    checks.append(
        ShapeCheck(
            claim=(
                "burstier arrivals (alpha=1.05) give PCX lower-or-equal "
                "latency at most rates (Fig 8a)"
            ),
            passed=wins >= len(rates) - 1,
            detail=f"{wins}/{len(rates)} rates",
        )
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        rows=rows,
        shape_checks=tuple(checks),
    )
