"""Shared configuration scaffolding for the paper experiments."""

from __future__ import annotations

from repro.engine.config import SimulationConfig
from repro.errors import ExperimentError

#: The paper's three compared schemes, in presentation order.
PAPER_SCHEMES = ("pcx", "cup", "dup")


def base_config(scale: str = "bench", seed: int = 1, **overrides) -> SimulationConfig:
    """The per-scale starting configuration for an experiment.

    ``"bench"`` trims the population and horizon so a full experiment
    finishes in minutes of wall-clock on a laptop; ``"quick"`` trims
    further for the pytest-benchmark harness (tens of seconds per
    table/figure); ``"smoke"`` trims further still for CI regression and
    golden-file tests (seconds per figure); ``"paper"`` uses the full
    Table I parameters (4096 nodes, >= 180,000 simulated seconds), which
    takes hours in pure Python — exactly like the original runs.  All
    sweeps apply identically to any base.
    """
    if scale == "smoke":
        defaults = dict(
            num_nodes=128,
            duration=3600.0 * 3,
            warmup=3600.0,
            seed=seed,
        )
    elif scale == "quick":
        defaults = dict(
            num_nodes=512,
            duration=3600.0 * 5,
            warmup=3600.0 * 2,
            seed=seed,
        )
    elif scale == "bench":
        defaults = dict(
            num_nodes=1024,
            duration=3600.0 * 6,
            warmup=3600.0 * 2,
            seed=seed,
        )
    elif scale == "paper":
        defaults = dict(
            num_nodes=4096,
            duration=180_000.0,
            warmup=3600.0,
            seed=seed,
        )
    else:
        raise ExperimentError(
            f"unknown scale {scale!r}; use 'smoke', 'quick', 'bench', "
            "or 'paper'"
        )
    defaults.update(overrides)
    return SimulationConfig(**defaults)
