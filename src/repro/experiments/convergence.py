"""Convergence study: how fast the DUP tree forms and repairs.

Not a paper figure — the paper reports steady-state averages — but the
natural follow-up question for anyone deploying DUP: how long after a
cold start until the propagation tree covers the interested population,
and how quickly does coverage recover after a correlated failure burst?

Two phases, observed through sampled time series:

1. **cold start** — subscriber count and cumulative hit rate from t=0;
   convergence time = first sample where the subscriber count reaches
   90 % of its steady value.
2. **mass failure** — at a chosen instant a fraction of non-root nodes
   crash simultaneously (Section III-C's repair flows all fire at once);
   we track how many surviving subscribers remain push-reachable and how
   long until coverage returns to ~steady state.
"""

from __future__ import annotations

import numpy as np

from repro.engine.simulation import Simulation
from repro.experiments.common import base_config
from repro.experiments.spec import ExperimentResult, ShapeCheck

EXPERIMENT_ID = "convergence"
TITLE = "DUP tree formation and post-failure recovery"

RATE = 10.0
FAIL_FRACTION = 0.10


def run(
    scale: str = "bench",
    replications: int = 1,  # a time-series study; one seed per run
    seed: int = 1,
    rate: float = RATE,
    fail_fraction: float = FAIL_FRACTION,
    workers=None,
) -> ExperimentResult:
    """Run the two-phase convergence study.

    ``workers`` is accepted for interface parity with the other
    experiments but ignored: this is a single continuous time-series
    simulation with in-process probes and an injected failure process —
    there is no trial grid to fan out.
    """
    del workers
    config = base_config(
        scale,
        seed=seed,
        scheme="dup",
        query_rate=rate,
        warmup=0.0,
    )
    sim = Simulation(config)
    sample_interval = config.ttl / 6
    subscribed = sim.add_probe(
        "subscribed",
        lambda: float(len(sim.scheme.subscribed_nodes())),
        interval=sample_interval,
    )
    coverage = sim.add_probe(
        "dup_tree_size",
        lambda: float(sim.scheme.dup_tree_size()),
        interval=sample_interval,
    )

    fail_at = config.duration * 0.6
    failed_count = [0]

    def mass_failure(env):
        yield env.timeout(fail_at)
        rng = np.random.default_rng(seed + 1000)
        non_root = [n for n in sim.tree.nodes if n != sim.tree.root]
        victims = rng.choice(
            non_root,
            size=max(1, int(len(non_root) * fail_fraction)),
            replace=False,
        )
        for victim in victims:
            if sim.alive(int(victim)):
                sim.scheme.on_node_failed(int(victim))
                failed_count[0] += 1

    sim.env.process(mass_failure(sim.env), name="mass-failure")
    sim.run()

    # -- cold-start convergence -------------------------------------------
    before = subscribed.window(0.0, fail_at - 1.0)
    steady = before.values[-1] if len(before) else float("nan")
    converged_at = float("nan")
    for sample in before:
        if steady and sample.value >= 0.9 * steady:
            converged_at = sample.time
            break

    # -- post-failure recovery ---------------------------------------------
    after = subscribed.window(fail_at, config.duration)
    drop = after.values[0] if len(after) else float("nan")
    recovery_target = 0.85 * steady
    recovered_at = float("nan")
    for sample in after:
        if sample.value >= recovery_target:
            recovered_at = sample.time - fail_at
            break

    rows = [
        {
            "phase": "cold start",
            "steady_subscribers": steady,
            "time_to_90pct_s": converged_at,
            "ttl_multiples": converged_at / config.ttl,
        },
        {
            "phase": f"mass failure ({failed_count[0]} nodes)",
            "steady_subscribers": drop,
            "time_to_90pct_s": recovered_at,
            "ttl_multiples": recovered_at / config.ttl
            if recovered_at == recovered_at
            else float("nan"),
        },
    ]
    checks = (
        ShapeCheck(
            claim="the DUP tree converges within ~2 TTLs of a cold start",
            passed=converged_at == converged_at
            and converged_at <= 2.2 * config.ttl,
            detail=f"{converged_at:.0f}s (= {converged_at / config.ttl:.2f} TTL)",
        ),
        ShapeCheck(
            claim=(
                "after a correlated failure of "
                f"{fail_fraction:.0%} of nodes, coverage recovers within "
                "~2 TTLs"
            ),
            passed=recovered_at == recovered_at
            and recovered_at <= 2.2 * config.ttl,
            detail=f"{recovered_at:.0f}s after the burst"
            if recovered_at == recovered_at
            else "never recovered",
        ),
        ShapeCheck(
            claim="the propagation tree never exceeds the overlay",
            passed=coverage.maximum() <= config.num_nodes,
            detail=f"peak tree size {coverage.maximum():.0f} of "
            f"{config.num_nodes} nodes",
        ),
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        rows=rows,
        shape_checks=checks,
        notes=(
            f"single-seed time-series study at lambda={rate:g}; failure "
            f"burst at t={fail_at:.0f}s"
        ),
    )
