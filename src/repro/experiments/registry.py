"""Registry mapping experiment ids to their ``run`` callables."""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from repro.engine.parallel import TrialFailure
from repro.errors import ExperimentError
from repro.experiments import (
    ablations,
    adaptive_study,
    churn_study,
    convergence,
    figure4_arrival_rate,
    figure5_size_cost,
    figure6_degree,
    figure7_zipf,
    figure8_pareto,
    fluctuation_study,
    overload_study,
    paper_spotcheck,
    partition_study,
    resilience_study,
    scale_study,
    table2_threshold,
    table3_network_size,
)

_REGISTRY: dict[str, Callable] = {
    "table2": table2_threshold.run,
    "figure4": figure4_arrival_rate.run,
    "table3": table3_network_size.run,
    "figure5": figure5_size_cost.run,
    "figure6": figure6_degree.run,
    "figure7": figure7_zipf.run,
    "figure8": figure8_pareto.run,
    "churn": churn_study.run,
    "convergence": convergence.run,
    "resilience": resilience_study.run,
    "partition": partition_study.run,
    "overload": overload_study.run,
    "adaptive": adaptive_study.run,
    "fluctuation": fluctuation_study.run,
    "scale": scale_study.run,
    "paper-spotcheck": paper_spotcheck.run,
    "ablations": ablations.run,
    "ablation-cutoff": ablations.run_cut_off,
    "ablation-piggyback": ablations.run_piggyback,
    "ablation-interest": ablations.run_interest_policy,
    "ablation-invalidate": ablations.run_invalidate,
    "ablation-topology": ablations.run_topology,
    "ablation-extremes": ablations.run_extremes,
}


def run_all(
    scale: str = "quick",
    replications: int = 1,
    seed: int = 1,
    workers=None,
    keep_going: bool = False,
    failures: Optional[list] = None,
):
    """Run every registered experiment; returns the flat result list.

    At the default ``quick`` scale this regenerates every paper artifact
    in a few minutes; ``bench`` takes tens of minutes; ``paper`` runs for
    many hours (full Table I fidelity).  ``workers`` is forwarded to each
    experiment's trial fan-out (see :mod:`repro.engine.parallel`).

    ``keep_going`` continues past a failing experiment instead of
    aborting the whole batch; each failed trial is recorded as a
    :class:`~repro.engine.parallel.TrialFailure` and appended to the
    caller-supplied ``failures`` list (render it with
    :func:`format_failure_table`).
    """
    results = []
    for name, runner in _REGISTRY.items():
        if name in (
            "all",
            "paper-spotcheck",
            "resilience",
            "partition",
            "overload",
            "adaptive",
            "fluctuation",
            "scale",
        ) or name.startswith(
            "ablation-"
        ):
            continue  # covered elsewhere / deliberately slow
        try:
            outcome = runner(
                scale=scale,
                replications=replications,
                seed=seed,
                workers=workers,
            )
        except ExperimentError as error:
            if not keep_going:
                raise
            recorded = getattr(error, "trial_failures", None) or (
                TrialFailure(experiment=name, trial=name, error=repr(error)),
            )
            if failures is not None:
                failures.extend(recorded)
            continue
        if isinstance(outcome, list):
            results.extend(outcome)
        else:
            results.append(outcome)
    return results


def format_failure_table(failures: Sequence[TrialFailure]) -> str:
    """Render the per-experiment failure table ``run_all`` collected."""
    if not failures:
        return "no failures"
    by_experiment: dict[str, list[TrialFailure]] = {}
    for failure in failures:
        by_experiment.setdefault(failure.experiment or "?", []).append(failure)
    lines = [f"{len(failures)} failed trial(s) in {len(by_experiment)} experiment(s):"]
    for experiment in sorted(by_experiment):
        entries = by_experiment[experiment]
        lines.append(f"  {experiment} ({len(entries)} failed)")
        for failure in entries:
            lines.append(f"    {failure.trial}: {failure.error}")
    return "\n".join(lines)


_REGISTRY["all"] = run_all


def list_experiments() -> tuple[str, ...]:
    """All registered experiment ids."""
    return tuple(sorted(_REGISTRY))


def get_experiment(experiment_id: str) -> Callable:
    """The ``run`` callable for ``experiment_id``."""
    try:
        return _REGISTRY[experiment_id]
    except KeyError:
        raise ExperimentError(
            f"unknown experiment {experiment_id!r}; "
            f"available: {list_experiments()}"
        ) from None
