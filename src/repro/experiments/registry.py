"""Registry mapping experiment ids to their ``run`` callables."""

from __future__ import annotations

from typing import Callable

from repro.errors import ExperimentError
from repro.experiments import (
    ablations,
    churn_study,
    convergence,
    figure4_arrival_rate,
    figure5_size_cost,
    figure6_degree,
    figure7_zipf,
    figure8_pareto,
    paper_spotcheck,
    partition_study,
    resilience_study,
    table2_threshold,
    table3_network_size,
)

_REGISTRY: dict[str, Callable] = {
    "table2": table2_threshold.run,
    "figure4": figure4_arrival_rate.run,
    "table3": table3_network_size.run,
    "figure5": figure5_size_cost.run,
    "figure6": figure6_degree.run,
    "figure7": figure7_zipf.run,
    "figure8": figure8_pareto.run,
    "churn": churn_study.run,
    "convergence": convergence.run,
    "resilience": resilience_study.run,
    "partition": partition_study.run,
    "paper-spotcheck": paper_spotcheck.run,
    "ablations": ablations.run,
    "ablation-cutoff": ablations.run_cut_off,
    "ablation-piggyback": ablations.run_piggyback,
    "ablation-interest": ablations.run_interest_policy,
    "ablation-invalidate": ablations.run_invalidate,
    "ablation-topology": ablations.run_topology,
    "ablation-extremes": ablations.run_extremes,
}


def run_all(
    scale: str = "quick",
    replications: int = 1,
    seed: int = 1,
    workers=None,
):
    """Run every registered experiment; returns the flat result list.

    At the default ``quick`` scale this regenerates every paper artifact
    in a few minutes; ``bench`` takes tens of minutes; ``paper`` runs for
    many hours (full Table I fidelity).  ``workers`` is forwarded to each
    experiment's trial fan-out (see :mod:`repro.engine.parallel`).
    """
    results = []
    for name, runner in _REGISTRY.items():
        if name in (
            "all",
            "paper-spotcheck",
            "resilience",
            "partition",
        ) or name.startswith(
            "ablation-"
        ):
            continue  # covered elsewhere / deliberately slow
        outcome = runner(
            scale=scale, replications=replications, seed=seed, workers=workers
        )
        if isinstance(outcome, list):
            results.extend(outcome)
        else:
            results.append(outcome)
    return results


_REGISTRY["all"] = run_all


def list_experiments() -> tuple[str, ...]:
    """All registered experiment ids."""
    return tuple(sorted(_REGISTRY))


def get_experiment(experiment_id: str) -> Callable:
    """The ``run`` callable for ``experiment_id``."""
    try:
        return _REGISTRY[experiment_id]
    except KeyError:
        raise ExperimentError(
            f"unknown experiment {experiment_id!r}; "
            f"available: {list_experiments()}"
        ) from None
