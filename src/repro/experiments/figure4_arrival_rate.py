"""Figure 4: performance as a function of the mean query arrival rate.

Figure 4(a) plots average query latency (with 95 % confidence interval)
against ``lambda``; Figure 4(b) plots the cost of CUP and DUP relative to
PCX.  The paper's claims:

- latency decreases with the arrival rate for every scheme (warmer
  caches), with DUP lowest because updates are pushed proactively and
  take short-cuts;
- at low rates both push schemes shave ~20 % off PCX's cost, DUP ahead;
- as the rate grows, CUP's relative cost flattens out (the ~50 % ceiling
  of hop-by-hop pushing) while DUP keeps dropping well below it.
"""

from __future__ import annotations

from repro.engine.runner import compare_many
from repro.experiments.common import PAPER_SCHEMES, base_config
from repro.experiments.format import monotone
from repro.experiments.plot import plot_experiment_series
from repro.experiments.spec import ExperimentResult, ShapeCheck

EXPERIMENT_ID = "figure4"
TITLE = "Effects of the query arrival rate lambda"

BENCH_RATES = (0.1, 0.3, 1.0, 3.0, 10.0, 30.0)
PAPER_RATES = (0.1, 0.3, 1.0, 3.0, 10.0, 30.0, 100.0)


def run(
    scale: str = "bench",
    replications: int = 2,
    seed: int = 1,
    rates=None,
    workers=None,
) -> ExperimentResult:
    """Regenerate Figure 4 (a) and (b)."""
    if rates is None:
        # Smoke-scale populations are too small for the paper's extreme
        # rates to order cleanly; they get the trimmed bench grid.
        rates = PAPER_RATES if scale in ("quick", "paper") else BENCH_RATES
    comparisons = compare_many(
        {
            rate: base_config(scale, seed=seed, query_rate=rate)
            for rate in rates
        },
        PAPER_SCHEMES,
        replications,
        workers=workers,
        experiment=EXPERIMENT_ID,
    )

    rows = []
    for rate, comparison in comparisons.items():
        row = {"lambda": rate}
        for scheme in PAPER_SCHEMES:
            row[f"latency_{scheme}"] = comparison.latency(scheme).mean
        row["latency_ci_dup"] = str(comparison.latency("dup"))
        for scheme in ("cup", "dup"):
            row[f"relcost_{scheme}"] = comparison.relative_cost[scheme].mean
        rows.append(row)

    checks = []
    for scheme in PAPER_SCHEMES:
        latencies = [comparisons[r].latency(scheme).mean for r in rates]
        checks.append(
            ShapeCheck(
                claim=f"{scheme} latency decreases with lambda (Fig 4a)",
                passed=monotone(latencies, decreasing=True, slack=0.2),
                detail=f"{[round(v, 4) for v in latencies]}",
            )
        )
    for rate in rates:
        ordering = [
            comparisons[rate].latency(s).mean for s in ("dup", "cup", "pcx")
        ]
        checks.append(
            ShapeCheck(
                claim=f"latency order dup <= cup <= pcx at lambda={rate:g}",
                passed=ordering[0] <= ordering[1] * 1.05 + 1e-9
                and ordering[1] <= ordering[2] * 1.05 + 1e-9,
                detail=f"dup={ordering[0]:.4g} cup={ordering[1]:.4g} "
                f"pcx={ordering[2]:.4g}",
            )
        )
    high = max(rates)
    rel_dup = comparisons[high].relative_cost["dup"].mean
    rel_cup = comparisons[high].relative_cost["cup"].mean
    checks.append(
        ShapeCheck(
            claim=(
                "at the highest rate DUP's relative cost is below CUP's "
                "(Fig 4b: DUP breaks CUP's ceiling)"
            ),
            passed=rel_dup < rel_cup,
            detail=f"dup={rel_dup:.3f} cup={rel_cup:.3f}",
        )
    )
    rel_series_dup = [comparisons[r].relative_cost["dup"].mean for r in rates]
    checks.append(
        ShapeCheck(
            claim="DUP relative cost decreases with lambda (Fig 4b)",
            passed=monotone(rel_series_dup, decreasing=True, slack=0.1),
            detail=f"{[round(v, 3) for v in rel_series_dup]}",
        )
    )
    plots = (
        plot_experiment_series(
            rows,
            "lambda",
            ["latency_pcx", "latency_cup", "latency_dup"],
            log_x=True,
        ),
        plot_experiment_series(
            rows, "lambda", ["relcost_cup", "relcost_dup"], log_x=True
        ),
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        rows=rows,
        shape_checks=tuple(checks),
        notes=(
            "Fig 4a series: latency_* columns; Fig 4b series: relcost_* "
            "columns (relative to PCX on paired seeds)."
        ),
        plots=plots,
    )
