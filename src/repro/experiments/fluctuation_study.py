"""Fluctuation study: DUP under crash-restart peer churn.

The paper's churn model is memoryless — a failed node is gone forever
and its state with it.  Measured peer-to-peer populations instead cycle
the *same* peers between alive and down: heavy-tailed sessions, repair
times clustered around an MTTR, and the repeat offenders ("flappers")
dominating the event count.  This experiment sweeps mean session length
x MTTR for four variants on the same seeds:

- ``dup-reliable`` — DUP with the resilience stack (acked control
  messages, leases, silent failures) under the crash-restart lifecycle:
  every rejoin runs the amnesia reconciliation handshake
  (:meth:`~repro.core.maintenance.DupMaintenance.node_rejoined`).
- ``dup-damped`` — the same plus BGP-style flap damping: a peer whose
  crash penalty crosses the suppress threshold rejoins with full
  amnesia and is refused re-subscription until the penalty decays.
- ``cup`` / ``pcx`` — the soft-state baselines under the same lifecycle
  (their TTL state needs no reconciliation; rejoin is a re-graft).

Reported per (session, MTTR, variant): latency (mean and p95 tail),
cost per query, control+push hops per query (the repair-traffic cost
damping is meant to cut), stale-read fraction, and the session/flap
counters.  The headline shape check: at equal session/MTTR operating
points, damping reduces the control-message cost of flapping peers
without giving up stale-read consistency.
"""

from __future__ import annotations

import math

from repro.engine.runner import replicate_many
from repro.experiments.common import base_config
from repro.experiments.spec import ExperimentResult, ShapeCheck
from repro.net.faults import FaultPlan
from repro.workload.sessions import SessionPlan

EXPERIMENT_ID = "fluctuation"
TITLE = "DUP under crash-restart peer fluctuation"

#: (mean session length, mean downtime) operating points, in seconds.
BENCH_POINTS = (
    (1800.0, 120.0),
    (1800.0, 600.0),
    (600.0, 120.0),
    (600.0, 600.0),
)
SMOKE_POINTS = ((900.0, 120.0),)
#: Network-wide query rate (matches the resilience study).
RATE = 3.0
#: Resilience-stack parameters shared by both DUP variants.
RETRY_BUDGET = 4
ACK_TIMEOUT = 2.0
#: Flap-damping knobs of the ``dup-damped`` variant.
DAMP_PENALTY = 1.0
DAMP_HALF_LIFE = 600.0
DAMP_SUPPRESS = 3.0
DAMP_REUSE = 1.5

VARIANTS = ("dup-reliable", "dup-damped", "cup", "pcx")


def _smoke_config(seed: int) -> "object":
    """A CI-sized base: one minute of wall clock for the whole sweep."""
    return base_config(
        "quick",
        seed=seed,
        num_nodes=64,
        ttl=600.0,
        push_lead=60.0,
        warmup=900.0,
        duration=3600.0,
    )


def _session_plan(session: float, mttr: float, damped: bool) -> SessionPlan:
    knobs = {}
    if damped:
        knobs = {
            "damp_penalty": DAMP_PENALTY,
            "damp_half_life": DAMP_HALF_LIFE,
            "damp_suppress": DAMP_SUPPRESS,
            "damp_reuse": DAMP_REUSE,
        }
    return SessionPlan(
        mean_session=session, mean_downtime=mttr, **knobs
    )


def _variant_config(base, variant: str, session: float, mttr: float):
    plan = _session_plan(session, mttr, damped=variant == "dup-damped")
    if variant in ("dup-reliable", "dup-damped"):
        return base.replace(
            scheme="dup",
            sessions=plan,
            faults=FaultPlan(silent_failures=True),
            retry_budget=RETRY_BUDGET,
            ack_timeout=ACK_TIMEOUT,
            lease_ttl=base.ttl / 2.0,
        )
    return base.replace(scheme=variant, sessions=plan)


def _mean(values) -> float:
    values = [v for v in values if not math.isnan(v)]
    if not values:
        return float("nan")
    return sum(values) / len(values)


def _control_hops_per_query(runs) -> float:
    """Control+push hops per completed query: the repair-traffic cost."""
    hops = sum(
        r.hop_breakdown.get("control", 0) + r.hop_breakdown.get("push", 0)
        for r in runs
    )
    queries = sum(r.queries for r in runs)
    if queries <= 0:
        return float("nan")
    return hops / queries


def run(
    scale: str = "bench",
    replications: int = 2,
    seed: int = 1,
    points=None,
    rate: float = RATE,
    workers=None,
) -> ExperimentResult:
    """Sweep mean session length x MTTR for every variant."""
    if points is None:
        points = SMOKE_POINTS if scale == "smoke" else BENCH_POINTS
    base = (
        _smoke_config(seed) if scale == "smoke" else base_config(scale, seed=seed)
    ).replace(query_rate=rate)

    results = replicate_many(
        {
            (session, mttr, variant): _variant_config(
                base, variant, session, mttr
            )
            for session, mttr in points
            for variant in VARIANTS
        },
        replications,
        workers=workers,
        experiment=EXPERIMENT_ID,
    )
    rows = []
    for (session, mttr, variant), aggregated in results.items():
        runs = aggregated.runs
        extras = [dict(r.extras) for r in runs]

        def total(key):
            return sum(int(e.get(key, 0)) for e in extras)

        rows.append(
            {
                "mean_session": session,
                "mttr": mttr,
                "variant": variant,
                "latency": aggregated.latency.mean,
                "latency_p95": _mean(
                    [
                        float(r.latency_percentiles.get("p95", "nan"))
                        for r in runs
                    ]
                ),
                "cost": aggregated.cost.mean,
                "ctrl_hops_per_query": _control_hops_per_query(runs),
                "stale_frac": _mean(
                    [r.stale_read_fraction for r in runs]
                ),
                "crashes": total("session_crashes"),
                "rejoins": total("session_rejoins"),
                "rejoins_damped": total("session_rejoins_damped"),
                "flap_suppressions": total("flap_suppressions"),
                "rejoin_excised": total("rejoin_excised_entries"),
            }
        )

    checks = _shape_checks(scale, points, results)
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        rows=rows,
        shape_checks=tuple(checks),
        notes=(
            "No paper figure exists for crash-restart churn; the paper's "
            "failure model loses a crashed node's state forever.  This "
            "probes the opposite regime — the same peers cycling alive/"
            "down — and the flap-damping defence against its repair-"
            "traffic cost."
        ),
    )


def _shape_checks(scale, points, results):
    checks = []
    # The flappiest operating point: shortest sessions, then longest MTTR.
    probe = min(points, key=lambda p: (p[0], -p[1]))
    session, mttr = probe

    reliable = results[(session, mttr, "dup-reliable")]
    crashes = sum(
        int(r.extras.get("session_crashes", 0)) for r in reliable.runs
    )
    reconciles = sum(
        int(r.extras.get("rejoin_reconciles", 0)) for r in reliable.runs
    )
    checks.append(
        ShapeCheck(
            claim=(
                f"the lifecycle is exercised at session={session:g}s "
                f"mttr={mttr:g}s (peers crash and rejoin reconciliation "
                "runs)"
            ),
            passed=crashes > 0 and reconciles > 0,
            detail=f"crashes={crashes} reconciles={reconciles}",
        )
    )
    damped = results[(session, mttr, "dup-damped")]
    suppressions = sum(
        int(r.extras.get("flap_suppressions", 0)) for r in damped.runs
    )
    checks.append(
        ShapeCheck(
            claim=(
                "flap damping trips at the flappiest operating point "
                f"(session={session:g}s mttr={mttr:g}s)"
            ),
            passed=suppressions > 0,
            detail=f"suppressions={suppressions}",
        )
    )
    if scale == "smoke":
        # CI-sized runs see too few flap cycles for the cost comparison
        # to be statistically meaningful; the full criteria run at
        # quick/bench/paper scales.
        return checks

    undamped_cost = _control_hops_per_query(reliable.runs)
    damped_cost = _control_hops_per_query(damped.runs)
    checks.append(
        ShapeCheck(
            claim=(
                "flap damping reduces control+push hops per query vs "
                f"undamped DUP at session={session:g}s mttr={mttr:g}s"
            ),
            passed=(not math.isnan(damped_cost))
            and (not math.isnan(undamped_cost))
            and damped_cost < undamped_cost,
            detail=f"damped={damped_cost:.4g} undamped={undamped_cost:.4g}",
        )
    )
    undamped_stale = _mean([r.stale_read_fraction for r in reliable.runs])
    damped_stale = _mean([r.stale_read_fraction for r in damped.runs])
    checks.append(
        ShapeCheck(
            claim=(
                "damping holds the stale-read fraction within 2x (or "
                "+2pp) of undamped DUP at the same operating point"
            ),
            passed=(not math.isnan(damped_stale))
            and (not math.isnan(undamped_stale))
            and damped_stale
            <= max(2.0 * undamped_stale, undamped_stale + 0.02),
            detail=(
                f"damped={damped_stale:.4g} undamped={undamped_stale:.4g}"
            ),
        )
    )
    return checks
