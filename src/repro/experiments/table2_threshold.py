"""Table II: the effect of the threshold value ``c`` on DUP.

The paper runs DUP with c in {2..10} at three query rates and reports
average query cost and latency, concluding: cost decreases with ``c`` at
low rates (fewer nodes qualify as interested, fewer wasted pushes); at
``lambda = 10`` the cost is U-shaped — too small a ``c`` pushes to nodes
that never query again, too large a ``c`` starves nodes that should be
subscribed — with the sweet spot around ``c = 6`` (the paper's chosen
default).
"""

from __future__ import annotations

from repro.engine.runner import replicate_many
from repro.experiments.common import base_config
from repro.experiments.format import monotone
from repro.experiments.spec import ExperimentResult, ShapeCheck

EXPERIMENT_ID = "table2"
TITLE = "Effects of the threshold value c (DUP)"

C_VALUES = (2, 4, 6, 8, 10)
RATES = (0.1, 1.0, 10.0)


def run(
    scale: str = "bench",
    replications: int = 2,
    seed: int = 1,
    c_values=C_VALUES,
    rates=RATES,
    workers=None,
) -> ExperimentResult:
    """Regenerate Table II."""
    aggregates = replicate_many(
        {
            (rate, c): base_config(
                scale, seed=seed, scheme="dup", query_rate=rate, threshold_c=c
            )
            for rate in rates
            for c in c_values
        },
        replications,
        workers=workers,
        experiment=EXPERIMENT_ID,
    )
    cells: dict[tuple[float, int], tuple[float, float]] = {
        key: (aggregated.cost.mean, aggregated.latency.mean)
        for key, aggregated in aggregates.items()
    }

    rows = []
    for rate in rates:
        rows.append(
            {
                "metric": f"cost (lambda={rate:g})",
                **{f"c={c}": cells[(rate, c)][0] for c in c_values},
            }
        )
        rows.append(
            {
                "metric": f"latency (lambda={rate:g})",
                **{f"c={c}": cells[(rate, c)][1] for c in c_values},
            }
        )

    checks = []
    # Latency grows (weakly) with c: large c means fewer subscribed nodes.
    for rate in rates:
        latencies = [cells[(rate, c)][1] for c in c_values]
        checks.append(
            ShapeCheck(
                claim=f"latency non-decreasing in c at lambda={rate:g}",
                passed=monotone(latencies, decreasing=False, slack=0.25),
                detail=f"{[round(v, 4) for v in latencies]}",
            )
        )
    # At the highest rate, the largest c is not the cheapest (the paper's
    # U-shape: pushing too selectively forces re-fetches).
    high = max(rates)
    high_costs = [cells[(high, c)][0] for c in c_values]
    checks.append(
        ShapeCheck(
            claim=(
                f"cost at lambda={high:g} is not minimized by the largest c "
                "(U-shape)"
            ),
            passed=min(high_costs) < high_costs[-1] * 1.0001
            and high_costs.index(min(high_costs)) < len(c_values) - 1,
            detail=f"{[round(v, 4) for v in high_costs]}",
        )
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        rows=rows,
        shape_checks=tuple(checks),
        notes=(
            "Paper picks c=6 as the balance point; compare the cost rows "
            "against Table II's trends, not its absolute values."
        ),
    )
