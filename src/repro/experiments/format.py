"""Plain-text rendering helpers for experiment output."""

from __future__ import annotations

from typing import Mapping, Sequence


def _format_cell(value: object) -> str:
    if isinstance(value, float):
        if value != value:  # nan
            return "n/a"
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:.0f}"
        if abs(value) >= 1:
            return f"{value:.3f}"
        return f"{value:.4f}"
    return str(value)


def render_table(rows: Sequence[Mapping[str, object]]) -> str:
    """Render dict rows as an aligned plain-text table."""
    if not rows:
        return "(no data)"
    columns: list[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    cells = [[_format_cell(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(line[index]) for line in cells))
        for index, col in enumerate(columns)
    ]
    header = "  ".join(col.ljust(width) for col, width in zip(columns, widths))
    separator = "  ".join("-" * width for width in widths)
    body = [
        "  ".join(cell.ljust(width) for cell, width in zip(line, widths))
        for line in cells
    ]
    return "\n".join([header, separator, *body])


def monotone(values: Sequence[float], decreasing: bool = True, slack: float = 0.0) -> bool:
    """Whether a series is (weakly) monotone, tolerating ``slack`` noise.

    ``slack`` is the relative amount each step may move the "wrong" way
    before the trend is declared broken (simulation output is noisy).
    """
    comparisons = zip(values, values[1:])
    if decreasing:
        return all(b <= a * (1 + slack) + 1e-12 for a, b in comparisons)
    return all(b >= a * (1 - slack) - 1e-12 for a, b in comparisons)
