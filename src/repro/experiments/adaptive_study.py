"""Adaptive & load-balanced DUP ablation across the overload storm engine.

The PR-8 variants change *when* a node subscribes (``dup-adaptive``: a
self-tuning per-node threshold instead of the paper's global ``c``) and
*where* a capped interior node parks excess subscribers
(``dup-balanced``: split to the best-ranked existing entry instead of
the PR-7 redirect-and-NACK).  Both collapse to plain ``dup`` when their
mechanism is inert — proven bit-identically by
``tests/test_differential.py`` — so this experiment asks the complement:
what do they buy when the mechanism *does* engage?

Every variant runs under the same finite service rate, bounded inbox,
and fanout cap (one shared :class:`~repro.net.overload.OverloadPlan`),
driven by the three storm kinds of :mod:`repro.workload.storms` at
increasing intensity:

- ``dup`` — the PR-7 protected baseline: at-cap subscribes are refused
  (redirected upstream + NACK), concentrating load on the ancestors.
- ``dup-adaptive`` — same protection, but each node's subscribe
  threshold tracks its own observed query rate between a floor and a
  ceiling, so cold nodes need sustained interest to join the DUP tree
  while hot nodes join eagerly.
- ``dup-balanced`` — the cap becomes a true per-node bound: capped
  interiors split excess subscribers onto under-loaded entries and
  reabsorb them when load drains.
- ``cup`` / ``pcx`` — the paper's baselines under the same plan.

Reported per (intensity, variant): latency (mean, p99), cost per query,
goodput, shed fraction, refused subscribers, splits / reabsorptions,
the widest subscriber fanout, and the adaptive threshold span.
"""

from __future__ import annotations

import math

from repro.engine.runner import replicate_many
from repro.experiments.common import base_config
from repro.experiments.spec import ExperimentResult, ShapeCheck
from repro.net.overload import OverloadPlan
from repro.workload.storms import StormPhase, StormPlan

EXPERIMENT_ID = "adaptive"
TITLE = "Adaptive & balanced DUP variants under overload storms"

#: Storm intensity multipliers per sweep level (0 = no storm).
BENCH_INTENSITIES = (0.0, 1.0, 2.0, 4.0)
SMOKE_INTENSITIES = (0.0, 1.0, 4.0)

VARIANTS = ("dup", "dup-adaptive", "dup-balanced", "cup", "pcx")
DUP_FAMILY = ("dup", "dup-adaptive", "dup-balanced")

#: Base network-wide query rate (queries/second).
RATE = 3.0
#: Shared overload plan: the same service model, inbox bound, and
#: fanout / registration cap for every variant (see overload_study for
#: the calibration rationale — cap 3 sits below the tree degree so it
#: binds, service 1.5 straddles the update-storm push rate).
SERVICE_RATE = 1.5
INBOX_CAPACITY = 48
MAX_SUBSCRIBERS = 3
COALESCE_GAP = 30.0
#: Reliable-channel parameters for the DUP family (Delegate/Reclaim and
#: the PR-7 NACK flows assume the retry machinery is on).
RETRY_BUDGET = 3
ACK_TIMEOUT = 2.0
RETRY_TIMEOUT_CAP = 16.0
#: Adaptive-threshold bounds around the stock threshold_c.
THRESHOLD_FLOOR = 2
THRESHOLD_CEILING = 10
ADAPTIVE_GAIN = 0.5

#: Storm event rates at intensity 1 (scaled linearly by intensity);
#: identical to the overload study so the sweeps are comparable.
FLASH_RATE = 2.0 * RATE
FLASH_RANK_FLIPS = 8
UPDATE_RATE = 0.5
THRASH_RATE = 0.05
THRASH_BURST = 2 * INBOX_CAPACITY


def _storm_config(seed: int):
    """The purpose-built storm base (see overload_study._storm_config)."""
    return base_config(
        "quick",
        seed=seed,
        num_nodes=64,
        ttl=120.0,
        push_lead=30.0,
        warmup=900.0,
        duration=3600.0,
    )


def _storm_plan(base, intensity: float):
    """The three overlapping storm phases, scaled by ``intensity``."""
    if intensity <= 0:
        return None
    warmup = base.warmup
    window = base.duration - warmup
    return StormPlan(
        phases=(
            StormPhase(
                kind="flash-crowd",
                start=warmup + 0.1 * window,
                duration=0.6 * window,
                rate=FLASH_RATE * intensity,
                rank_flips=FLASH_RANK_FLIPS,
            ),
            StormPhase(
                kind="update-storm",
                start=warmup + 0.2 * window,
                duration=0.5 * window,
                rate=UPDATE_RATE * intensity,
            ),
            StormPhase(
                kind="thrash",
                start=warmup + 0.3 * window,
                duration=0.4 * window,
                rate=THRASH_RATE * intensity,
                burst=THRASH_BURST,
            ),
        )
    )


def _shared_plan() -> OverloadPlan:
    return OverloadPlan(
        service_rate=SERVICE_RATE,
        inbox_capacity=INBOX_CAPACITY,
        max_subscribers=MAX_SUBSCRIBERS,
        authority_coalesce_gap=COALESCE_GAP,
    )


def _variant_config(base, variant: str, intensity: float):
    config = base.replace(
        scheme=variant,
        overload=_shared_plan(),
        storms=_storm_plan(base, intensity),
    )
    if variant in DUP_FAMILY:
        config = config.replace(
            retry_budget=RETRY_BUDGET,
            ack_timeout=ACK_TIMEOUT,
            retry_timeout_cap=RETRY_TIMEOUT_CAP,
        )
    if variant == "dup-adaptive":
        config = config.replace(
            threshold_floor=THRESHOLD_FLOOR,
            threshold_ceiling=THRESHOLD_CEILING,
            adaptive_gain=ADAPTIVE_GAIN,
        )
    return config


def _mean(values) -> float:
    values = [v for v in values if not math.isnan(v)]
    if not values:
        return float("nan")
    return sum(values) / len(values)


def run(
    scale: str = "bench",
    replications: int = 2,
    seed: int = 1,
    intensities=None,
    rate: float = RATE,
    workers=None,
) -> ExperimentResult:
    """Sweep storm intensity for every variant under one shared plan."""
    if intensities is None:
        intensities = (
            SMOKE_INTENSITIES if scale == "smoke" else BENCH_INTENSITIES
        )
    base = _storm_config(seed).replace(query_rate=rate)

    results = replicate_many(
        {
            (intensity, variant): _variant_config(base, variant, intensity)
            for intensity in intensities
            for variant in VARIANTS
        },
        replications,
        workers=workers,
        experiment=EXPERIMENT_ID,
    )
    horizon = base.duration - base.warmup
    rows = []
    for (intensity, variant), aggregated in results.items():
        runs = aggregated.runs
        extras = [dict(r.extras) for r in runs]

        def total(key):
            return sum(int(e.get(key, 0)) for e in extras)

        rows.append(
            {
                "intensity": intensity,
                "variant": variant,
                "latency": aggregated.latency.mean,
                "p99": _mean(
                    [
                        float(r.latency_percentiles.get("p99", "nan"))
                        for r in runs
                    ]
                ),
                "cost": aggregated.cost.mean,
                "goodput": sum(r.queries for r in runs)
                / (len(runs) * horizon),
                "shed_frac": _mean(
                    [float(e.get("shed_fraction", 0.0)) for e in extras]
                ),
                "rejected": total("rejected_subscribers"),
                "splits": total("split_subscribers"),
                "reabsorbed": total("reabsorbed_subscribers"),
                "max_fanout": max(
                    int(e.get("dup_max_fanout", 0)) for e in extras
                ),
                "threshold_min": min(
                    (
                        int(e["threshold_min"])
                        for e in extras
                        if "threshold_min" in e
                    ),
                    default=0,
                ),
                "threshold_max": max(
                    (
                        int(e["threshold_max"])
                        for e in extras
                        if "threshold_max" in e
                    ),
                    default=0,
                ),
            }
        )

    checks = _shape_checks(intensities, results, horizon)
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        rows=rows,
        shape_checks=tuple(checks),
        notes=(
            "No paper figure exists for these variants; dup-adaptive "
            "and dup-balanced are PR-8 extensions proven equivalent to "
            "plain dup when inert (tests/test_differential.py).  All "
            "variants share one OverloadPlan; latency is in hops.  The "
            "root is cap-exempt, so max_fanout compares variants rather "
            "than asserting a global bound."
        ),
    )


def _total(results, intensity, variant, key) -> int:
    return sum(
        int(r.extras.get(key, 0))
        for r in results[(intensity, variant)].runs
    )


def _goodput(results, intensity, variant, horizon) -> float:
    runs = results[(intensity, variant)].runs
    return sum(r.queries for r in runs) / (len(runs) * horizon)


def _shape_checks(intensities, results, horizon):
    checks = []
    stormy = [i for i in intensities if i > 0]
    if not stormy:
        return checks
    top = max(stormy)

    splits_by_intensity = {
        i: _total(results, i, "dup-balanced", "split_subscribers")
        for i in intensities
    }
    checks.append(
        ShapeCheck(
            claim=(
                "dup-balanced splits engage somewhere in the sweep "
                "(the cap binds and delegation actually fires)"
            ),
            passed=any(v > 0 for v in splits_by_intensity.values()),
            detail=" ".join(
                f"i{i:g}={v}" for i, v in splits_by_intensity.items()
            ),
        )
    )

    dup_rejected = sum(
        _total(results, i, "dup", "rejected_subscribers")
        for i in intensities
    )
    balanced_rejected = sum(
        _total(results, i, "dup-balanced", "rejected_subscribers")
        for i in intensities
    )
    checks.append(
        ShapeCheck(
            claim=(
                "splitting absorbs subscribers the redirect baseline "
                "refuses (balanced rejects <= dup rejects)"
            ),
            passed=balanced_rejected <= dup_rejected,
            detail=f"dup={dup_rejected} balanced={balanced_rejected}",
        )
    )

    def fanout(variant):
        return max(
            int(r.extras.get("dup_max_fanout", 0))
            for i in intensities
            for r in results[(i, variant)].runs
        )

    dup_fanout = fanout("dup")
    balanced_fanout = fanout("dup-balanced")
    checks.append(
        ShapeCheck(
            claim=(
                "splitting spreads load down: the widest balanced "
                "fanout never exceeds the redirect baseline's "
                "(the cap-exempt root concentrates redirects)"
            ),
            passed=balanced_fanout <= dup_fanout,
            detail=f"dup={dup_fanout} balanced={balanced_fanout} "
            f"cap={MAX_SUBSCRIBERS}",
        )
    )

    spread = {
        i: max(
            int(r.extras.get("threshold_max", 0))
            - int(r.extras.get("threshold_min", 0))
            for r in results[(i, "dup-adaptive")].runs
        )
        for i in intensities
    }
    checks.append(
        ShapeCheck(
            claim=(
                "adaptive thresholds actually diverge across nodes "
                "somewhere in the sweep (the estimator is live)"
            ),
            passed=any(v > 0 for v in spread.values()),
            detail=" ".join(f"i{i:g}={v}" for i, v in spread.items()),
        )
    )

    for variant in DUP_FAMILY:
        calm = _goodput(results, intensities[0], variant, horizon)
        stressed = _goodput(results, top, variant, horizon)
        checks.append(
            ShapeCheck(
                claim=(
                    f"{variant} goodput does not collapse at intensity "
                    f"{top:g} (>= 50% of the storm-free rate)"
                ),
                passed=stressed >= 0.5 * calm,
                detail=f"calm={calm:.4g}/s stressed={stressed:.4g}/s",
            )
        )
    return checks
