"""Ablations of DESIGN.md's design choices.

Six studies, each isolating one mechanism:

- ``cut_off``     — real soft-state CUP vs the idealized hard-state
                    variant (``cup-ideal``): how much of DUP's edge comes
                    from CUP's cut-off problem alone.
- ``piggyback``   — DUP with subscription piggybacking disabled (every
                    control payload pays explicit hops).
- ``interest``    — the paper's sliding-window interest policy vs the
                    EWMA alternative under bursty arrivals.
- ``invalidate``  — pushing the updated index (the paper's choice) vs
                    pushing an invalidation that forces a re-fetch.
- ``topology``    — the paper's synthetic random tree vs a search tree
                    derived from real Chord lookup paths.
- ``extremes``    — the no-cache and push-all anchors bracketing every
                    scheme.
"""

from __future__ import annotations

from repro.engine.runner import compare_many, compare_schemes, replicate_many
from repro.experiments.common import base_config
from repro.experiments.spec import ExperimentResult, ShapeCheck

EXPERIMENT_ID = "ablations"
TITLE = "Design-choice ablations"

RATE = 10.0


def run_cut_off(
    scale="bench", replications=2, seed=1, rate=RATE, workers=None
) -> ExperimentResult:
    """The CUP design space vs DUP: popularity-only, soft-state, ideal."""
    schemes = ("pcx", "cup-popularity", "cup", "cup-ideal", "dup")
    comparison = compare_schemes(
        base_config(scale, seed=seed, query_rate=rate),
        schemes=schemes,
        replications=replications,
        workers=workers,
        experiment="ablation-cutoff",
    )
    rows = [
        {
            "scheme": scheme,
            "latency": comparison.latency(scheme).mean,
            "relcost": comparison.relative_cost[scheme].mean,
        }
        for scheme in schemes
    ]
    cup = comparison.latency("cup").mean
    ideal = comparison.latency("cup-ideal").mean
    naive = comparison.latency("cup-popularity").mean
    dup = comparison.latency("dup").mean
    checks = (
        ShapeCheck(
            claim="hard-state registration removes CUP's cut-off latency",
            passed=ideal < cup,
            detail=f"cup={cup:.4g} cup-ideal={ideal:.4g}",
        ),
        ShapeCheck(
            claim=(
                "stronger registration means lower latency: "
                "popularity-only >= soft-state >= hard-state"
            ),
            passed=naive >= cup * 0.95 and cup >= ideal,
            detail=f"popularity={naive:.4g} cup={cup:.4g} ideal={ideal:.4g}",
        ),
        ShapeCheck(
            claim="DUP matches or beats even the idealized CUP on latency",
            passed=dup <= ideal * 1.35 + 1e-3,
            detail=f"dup={dup:.4g} cup-ideal={ideal:.4g}",
        ),
    )
    return ExperimentResult(
        "ablation-cutoff",
        "CUP soft-state cut-off vs idealized registration",
        rows,
        checks,
    )


def run_piggyback(
    scale="bench", replications=2, seed=1, rate=RATE, workers=None
) -> ExperimentResult:
    """DUP with and without control piggybacking / deferred subscribes."""
    variants = (
        ("dup (piggyback, deferred)", {}),
        ("dup (eager explicit subscribe)", {"eager_subscribe": True}),
        ("dup (no piggyback at all)", {"piggyback": False}),
    )
    values = replicate_many(
        {
            label: base_config(
                scale, seed=seed, scheme="dup", query_rate=rate, **overrides
            )
            for label, overrides in variants
        },
        replications,
        workers=workers,
        experiment="ablation-piggyback",
    )
    rows = []
    for label, aggregated in values.items():
        control = sum(
            r.hop_breakdown.get("control", 0) for r in aggregated.runs
        )
        rows.append(
            {
                "variant": label,
                "latency": aggregated.latency.mean,
                "cost": aggregated.cost.mean,
                "control_hops": control,
            }
        )
    default = values["dup (piggyback, deferred)"].cost.mean
    explicit = values["dup (no piggyback at all)"].cost.mean
    checks = (
        ShapeCheck(
            claim="piggybacking lowers DUP's total cost",
            passed=default <= explicit + 1e-9,
            detail=f"piggyback={default:.4g} explicit={explicit:.4g}",
        ),
    )
    return ExperimentResult(
        "ablation-piggyback", "Subscription piggybacking", rows, checks
    )


def run_interest_policy(
    scale="bench", replications=2, seed=1, rate=RATE, workers=None
) -> ExperimentResult:
    """Window vs EWMA interest policies under bursty (Pareto) arrivals."""
    aggregates = replicate_many(
        {
            policy: base_config(
                scale,
                seed=seed,
                scheme="dup",
                query_rate=rate,
                arrival="pareto",
                pareto_alpha=1.05,
                interest_policy=policy,
            )
            for policy in ("window", "ewma")
        },
        replications,
        workers=workers,
        experiment="ablation-interest",
    )
    rows = []
    for policy, aggregated in aggregates.items():
        rows.append(
            {
                "policy": policy,
                "latency": aggregated.latency.mean,
                "cost": aggregated.cost.mean,
                "hit_rate": aggregated.hit_rate,
            }
        )
    checks = (
        ShapeCheck(
            claim="both policies keep DUP functional under bursty arrivals",
            passed=all(row["hit_rate"] > 0.3 for row in rows),
            detail=f"hit rates: {[round(r['hit_rate'], 3) for r in rows]}",
        ),
    )
    return ExperimentResult(
        "ablation-interest", "Interest policy (window vs EWMA)", rows, checks
    )


def run_topology(
    scale="bench", replications=2, seed=1, rate=RATE, workers=None
) -> ExperimentResult:
    """Random-tree vs Chord-derived search trees."""
    comparisons = compare_many(
        {
            topology: base_config(
                scale, seed=seed, query_rate=rate, topology=topology
            )
            for topology in ("random-tree", "chord")
        },
        ("pcx", "cup", "dup"),
        replications,
        workers=workers,
        experiment="ablation-topology",
    )
    rows = []
    gaps = {}
    for topology in ("random-tree", "chord"):
        comparison = comparisons[topology]
        gaps[topology] = (
            comparison.relative_cost["cup"].mean
            - comparison.relative_cost["dup"].mean
        )
        for scheme in ("pcx", "cup", "dup"):
            rows.append(
                {
                    "topology": topology,
                    "scheme": scheme,
                    "latency": comparison.latency(scheme).mean,
                    "relcost": comparison.relative_cost[scheme].mean,
                }
            )
    checks = (
        ShapeCheck(
            claim=(
                "DUP's advantage over CUP survives on Chord-derived trees "
                "(not an artifact of the synthetic generator)"
            ),
            passed=gaps["chord"] > -0.02,
            detail=f"cup-dup relcost gap: random={gaps['random-tree']:.3f} "
            f"chord={gaps['chord']:.3f}",
        ),
    )
    return ExperimentResult(
        "ablation-topology", "Random tree vs Chord-derived tree", rows, checks
    )


def run_invalidate(
    scale="bench", replications=2, seed=1, rate=RATE, workers=None
) -> ExperimentResult:
    """Push the update vs push an invalidation (paper Section I).

    "Because the index size is very small, to do cache invalidation, the
    updated index should be sent so that caching nodes need not request
    for the updated index again" — this ablation measures the cost of
    doing it the other way.
    """
    comparison = compare_schemes(
        base_config(scale, seed=seed, query_rate=rate),
        schemes=("dup", "dup-invalidate"),
        replications=replications,
        workers=workers,
        experiment="ablation-invalidate",
    )
    rows = [
        {
            "variant": scheme,
            "latency": comparison.latency(scheme).mean,
            "relcost": comparison.relative_cost[scheme].mean,
        }
        for scheme in ("dup", "dup-invalidate")
    ]
    update = comparison.latency("dup").mean
    invalidate = comparison.latency("dup-invalidate").mean
    update_cost = comparison.relative_cost["dup"].mean
    invalidate_cost = comparison.relative_cost["dup-invalidate"].mean
    checks = (
        ShapeCheck(
            claim=(
                "pushing the updated index beats pushing invalidations on "
                "latency (subscribers need not re-fetch)"
            ),
            passed=update <= invalidate + 1e-9,
            detail=f"update={update:.4g} invalidate={invalidate:.4g}",
        ),
        ShapeCheck(
            claim="...and on total cost (same pushes, no re-fetch round trips)",
            passed=update_cost <= invalidate_cost + 1e-9,
            detail=f"update={update_cost:.3f} invalidate={invalidate_cost:.3f}",
        ),
    )
    return ExperimentResult(
        "ablation-invalidate",
        "Push updates vs push invalidations",
        rows,
        checks,
    )


def run_extremes(
    scale="bench", replications=1, seed=1, rate=RATE, workers=None
) -> ExperimentResult:
    """No-cache and push-all anchors around the three paper schemes."""
    comparison = compare_schemes(
        base_config(scale, seed=seed, query_rate=rate),
        schemes=("nocache", "pcx", "cup", "dup", "push-all"),
        replications=replications,
        workers=workers,
        experiment="ablation-extremes",
    )
    rows = [
        {
            "scheme": scheme,
            "latency": comparison.latency(scheme).mean,
            "relcost": comparison.relative_cost[scheme].mean,
        }
        for scheme in ("nocache", "pcx", "cup", "dup", "push-all")
    ]
    latencies = {row["scheme"]: row["latency"] for row in rows}
    checks = (
        ShapeCheck(
            claim="latency ordering: push-all <= dup <= cup <= pcx <= nocache",
            passed=(
                latencies["push-all"] <= latencies["dup"] * 1.2 + 1e-9
                and latencies["dup"] <= latencies["cup"] * 1.05 + 1e-9
                and latencies["cup"] <= latencies["pcx"] * 1.05 + 1e-9
                and latencies["pcx"] <= latencies["nocache"] * 1.05 + 1e-9
            ),
            detail=str({k: round(v, 4) for k, v in latencies.items()}),
        ),
    )
    return ExperimentResult(
        "ablation-extremes", "No-cache / push-all anchors", rows, checks
    )


def run(scale: str = "bench", replications: int = 2, seed: int = 1, workers=None):
    """Run every ablation; returns a list of results."""
    return [
        run_cut_off(scale, replications, seed, workers=workers),
        run_piggyback(scale, replications, seed, workers=workers),
        run_interest_policy(scale, replications, seed, workers=workers),
        run_topology(scale, replications, seed, workers=workers),
        run_invalidate(scale, replications, seed, workers=workers),
        run_extremes(scale, max(1, replications - 1), seed, workers=workers),
    ]
