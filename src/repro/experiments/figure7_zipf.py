"""Figure 7: the effects of the Zipf parameter theta.

Large theta concentrates the queries on a few hot nodes.  The paper's
claims: DUP's latency stays very low across the sweep; as theta grows,
DUP's cost relative to PCX keeps falling ("DUP can deliver the update to
hot spots with very low overhead") while CUP stops helping ("to push the
index to interested nodes, CUP relies on many intermediate nodes; since
these nodes are less likely to access the index when theta is large, CUP
does not perform well").
"""

from __future__ import annotations

from repro.engine.runner import compare_many
from repro.experiments.common import PAPER_SCHEMES, base_config
from repro.experiments.plot import plot_experiment_series
from repro.experiments.spec import ExperimentResult, ShapeCheck

EXPERIMENT_ID = "figure7"
TITLE = "Effects of the Zipf parameter theta"

THETAS = (0.5, 1.0, 2.0, 3.0, 4.0)
RATE = 10.0


def run(
    scale: str = "bench",
    replications: int = 2,
    seed: int = 1,
    thetas=THETAS,
    rate: float = RATE,
    workers=None,
) -> ExperimentResult:
    """Regenerate Figure 7 (a) and (b)."""
    comparisons = compare_many(
        {
            theta: base_config(
                scale, seed=seed, zipf_theta=theta, query_rate=rate
            )
            for theta in thetas
        },
        PAPER_SCHEMES,
        replications,
        workers=workers,
        experiment=EXPERIMENT_ID,
    )

    rows = []
    for theta, comparison in comparisons.items():
        row = {"theta": theta}
        for scheme in PAPER_SCHEMES:
            row[f"latency_{scheme}"] = comparison.latency(scheme).mean
        for scheme in ("cup", "dup"):
            row[f"relcost_{scheme}"] = comparison.relative_cost[scheme].mean
        rows.append(row)

    checks = []
    for theta in thetas:
        dup = comparisons[theta].latency("dup").mean
        pcx = comparisons[theta].latency("pcx").mean
        checks.append(
            ShapeCheck(
                claim=f"DUP latency well below PCX at theta={theta:g} (Fig 7a)",
                passed=dup <= pcx * 0.8 + 1e-9,
                detail=f"dup={dup:.4g} pcx={pcx:.4g}",
            )
        )
    rel_dup = [comparisons[t].relative_cost["dup"].mean for t in thetas]
    rel_cup = [comparisons[t].relative_cost["cup"].mean for t in thetas]
    checks.append(
        ShapeCheck(
            claim=(
                "at large theta DUP's relative cost is clearly below CUP's "
                "(Fig 7b: CUP 'does not perform well')"
            ),
            passed=rel_dup[-1] < rel_cup[-1],
            detail=f"theta={thetas[-1]:g}: dup={rel_dup[-1]:.3f} "
            f"cup={rel_cup[-1]:.3f}",
        )
    )
    checks.append(
        ShapeCheck(
            claim="DUP's relative cost at theta max below its theta-min value",
            passed=rel_dup[-1] <= rel_dup[0] + 0.05,
            detail=f"{[round(v, 3) for v in rel_dup]}",
        )
    )
    plots = (
        plot_experiment_series(
            rows, "theta", ["relcost_cup", "relcost_dup"]
        ),
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        rows=rows,
        shape_checks=tuple(checks),
        notes=f"run at lambda={rate:g}",
        plots=plots,
    )
