"""Paper-scale spot check: Table I parameters, no scaling at all.

Runs the three schemes at the paper's exact defaults — 4096 nodes,
maximum degree 4, TTL 3600 s, threshold 6, 180,000 simulated seconds —
across a lambda sweep, single seed.  This is the full-fidelity
counterpart of Figure 4 / Table III's lambda rows; expect tens of
minutes of wall-clock (pure Python, like the original study's runs).

Results from one complete run are recorded in EXPERIMENTS.md under
"paper-scale spot check".
"""

from __future__ import annotations

from repro.engine.config import SimulationConfig
from repro.engine.parallel import ParallelRunner, TrialSpec
from repro.experiments.format import monotone
from repro.experiments.spec import ExperimentResult, ShapeCheck

EXPERIMENT_ID = "paper-spotcheck"
TITLE = "Full Table-I fidelity lambda sweep (single seed)"

RATES = (0.1, 1.0, 10.0, 30.0)
SCHEMES = ("pcx", "cup", "dup")


def run(
    scale: str = "paper",  # accepted for interface parity; always paper
    replications: int = 1,
    seed: int = 1,
    rates=RATES,
    workers=None,
) -> ExperimentResult:
    """Run the spot check (slow: full paper parameters)."""
    del scale, replications  # one fidelity, one seed: that is the point
    specs = [
        TrialSpec(
            config=SimulationConfig(
                scheme=scheme,
                query_rate=rate,
                seed=seed,
                keep_latency_samples=rate <= 10.0,  # memory at high rates
            ),
            experiment=EXPERIMENT_ID,
            point=rate,
            scheme=scheme,
        )
        for rate in rates
        for scheme in SCHEMES
    ]
    runner = ParallelRunner(workers=workers, experiment=EXPERIMENT_ID)
    outputs = runner.run_trials(specs)
    results = {
        (spec.point, spec.scheme): result
        for spec, result in zip(specs, outputs)
    }

    rows = []
    for rate in rates:
        row = {"lambda": rate}
        for scheme in SCHEMES:
            result = results[(rate, scheme)]
            row[f"latency_{scheme}"] = result.mean_latency
            row[f"cost_{scheme}"] = result.cost_per_query
        pcx_cost = results[(rate, "pcx")].cost_per_query
        row["relcost_cup"] = results[(rate, "cup")].cost_per_query / pcx_cost
        row["relcost_dup"] = results[(rate, "dup")].cost_per_query / pcx_cost
        rows.append(row)

    checks = []
    for rate in rates:
        dup = results[(rate, "dup")].mean_latency
        cup = results[(rate, "cup")].mean_latency
        pcx = results[(rate, "pcx")].mean_latency
        checks.append(
            ShapeCheck(
                claim=f"latency order dup <= cup <= pcx at lambda={rate:g}",
                passed=dup <= cup * 1.02 + 1e-9 and cup <= pcx * 1.02 + 1e-9,
                detail=f"dup={dup:.4g} cup={cup:.4g} pcx={pcx:.4g}",
            )
        )
    rel_dup = [row["relcost_dup"] for row in rows]
    checks.append(
        ShapeCheck(
            claim="DUP relative cost decreases with lambda",
            passed=monotone(rel_dup, decreasing=True, slack=0.05),
            detail=f"{[round(v, 3) for v in rel_dup]}",
        )
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        rows=rows,
        shape_checks=tuple(checks),
        notes="n=4096, D=4, theta=0.95, c=6, TTL=3600s, T=180000s, seed=1",
    )
