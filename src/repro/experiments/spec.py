"""Shared result containers for the paper experiments."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.experiments.format import render_table


@dataclass(frozen=True)
class ShapeCheck:
    """One qualitative claim from the paper, checked against our data.

    Absolute magnitudes are not expected to match the authors' testbed;
    the *shapes* — orderings, monotonic trends, crossovers — are.
    """

    claim: str
    passed: bool
    detail: str = ""

    def __str__(self) -> str:
        marker = "PASS" if self.passed else "FAIL"
        suffix = f" ({self.detail})" if self.detail else ""
        return f"[{marker}] {self.claim}{suffix}"


@dataclass(frozen=True)
class ExperimentResult:
    """The reproduced data for one paper table or figure."""

    experiment_id: str
    title: str
    rows: Sequence[Mapping[str, object]]
    shape_checks: Sequence[ShapeCheck] = field(default_factory=tuple)
    notes: str = ""
    plots: Sequence[str] = field(default_factory=tuple)

    @property
    def all_shapes_hold(self) -> bool:
        """Whether every checked paper claim held in this run."""
        return all(check.passed for check in self.shape_checks)

    def render(self) -> str:
        """The table/series as printable text (the benchmark output)."""
        parts = [f"== {self.experiment_id}: {self.title} =="]
        parts.append(render_table(self.rows))
        for plot in self.plots:
            parts.append(plot)
        if self.shape_checks:
            parts.append("shape checks:")
            parts.extend(f"  {check}" for check in self.shape_checks)
        if self.notes:
            parts.append(f"note: {self.notes}")
        return "\n".join(parts)

    def __str__(self) -> str:
        return self.render()
