"""ASCII line plots for experiment series.

The benchmark harness runs in terminals and CI logs, so the "figures" are
rendered as text: :func:`ascii_plot` draws one or more named series on a
shared canvas with axis annotations, log-x support (the paper's lambda
sweeps span decades), and per-series glyphs.  Deliberately dependency-free.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

_GLYPHS = "ox+*#@%&"


def _scale(value: float, low: float, high: float, steps: int) -> int:
    if high == low:
        return 0
    position = (value - low) / (high - low)
    return max(0, min(steps - 1, round(position * (steps - 1))))


def ascii_plot(
    series: Mapping[str, Sequence[tuple[float, float]]],
    width: int = 64,
    height: int = 16,
    log_x: bool = False,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render named ``(x, y)`` series as an ASCII chart.

    Parameters
    ----------
    series:
        Mapping of series name to its points; each series gets a glyph.
    width, height:
        Canvas size in characters (excluding axes).
    log_x:
        Plot ``log10(x)`` on the horizontal axis (x must be positive).
    x_label, y_label:
        Axis annotations.
    """
    points: list[tuple[float, float, int]] = []
    for index, (name, data) in enumerate(series.items()):
        for x, y in data:
            if log_x:
                if x <= 0:
                    raise ValueError(f"log_x needs positive x, got {x}")
                x = math.log10(x)
            points.append((x, y, index % len(_GLYPHS)))
    if not points:
        return "(no data)"

    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_low, x_high = min(xs), max(xs)
    y_low, y_high = min(ys), max(ys)
    if y_low == y_high:
        y_low -= 0.5
        y_high += 0.5

    canvas = [[" "] * width for _ in range(height)]
    for x, y, glyph in points:
        column = _scale(x, x_low, x_high, width)
        row = height - 1 - _scale(y, y_low, y_high, height)
        canvas[row][column] = _GLYPHS[glyph]

    lines = []
    for row_index, row in enumerate(canvas):
        if row_index == 0:
            margin = f"{y_high:>10.4g} |"
        elif row_index == height - 1:
            margin = f"{y_low:>10.4g} |"
        else:
            margin = " " * 10 + " |"
        lines.append(margin + "".join(row))
    lines.append(" " * 11 + "+" + "-" * width)
    left = 10**x_low if log_x else x_low
    right = 10**x_high if log_x else x_high
    axis_note = f"{x_label} from {left:g} to {right:g}"
    if log_x:
        axis_note += " (log scale)"
    lines.append(" " * 12 + axis_note)
    legend = "  ".join(
        f"{_GLYPHS[index % len(_GLYPHS)]}={name}"
        for index, name in enumerate(series)
    )
    lines.append(" " * 12 + f"[{y_label}]  {legend}")
    return "\n".join(lines)


def plot_experiment_series(
    rows: Sequence[Mapping[str, object]],
    x_column: str,
    y_columns: Sequence[str],
    log_x: bool = False,
    width: int = 64,
    height: int = 14,
) -> str:
    """Plot columns of experiment rows (the table -> figure shortcut)."""
    series = {
        column: [
            (float(row[x_column]), float(row[column]))
            for row in rows
            if column in row and row[column] == row[column]
        ]
        for column in y_columns
    }
    return ascii_plot(
        series,
        width=width,
        height=height,
        log_x=log_x,
        x_label=x_column,
        y_label=", ".join(y_columns),
    )
