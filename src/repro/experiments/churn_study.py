"""Churn study: quantifying Section III-C's repair machinery.

The paper describes DUP's handling of node arrival, departure, and
failure but evaluates it only qualitatively ("most of these adjustments
are kept local ... and the overhead is small").  This experiment drives
DUP (and the baselines) under increasing churn rates and reports latency,
cost, dropped messages, and incomplete queries — quantifying that claim.
"""

from __future__ import annotations

from repro.engine.runner import replicate_many
from repro.experiments.common import base_config
from repro.experiments.spec import ExperimentResult, ShapeCheck
from repro.workload.churn import ChurnConfig

EXPERIMENT_ID = "churn"
TITLE = "DUP repair under churn (Section III-C, quantified)"

#: Churn intensity in events/second network-wide; half the rate is joins
#: and the other half departures (split between graceful leaves and
#: crashes), keeping the expected population stable over the run.
BENCH_LEVELS = (0.0, 0.005, 0.02, 0.08)
RATE = 3.0


def run(
    scale: str = "bench",
    replications: int = 2,
    seed: int = 1,
    levels=BENCH_LEVELS,
    rate: float = RATE,
    schemes=("pcx", "dup"),
    workers=None,
) -> ExperimentResult:
    """Sweep churn intensity for the given schemes."""

    def churn_for(level):
        if level == 0.0:
            return None
        return ChurnConfig(
            join_rate=level / 2, leave_rate=level / 4, fail_rate=level / 4
        )

    results = replicate_many(
        {
            (level, scheme): base_config(
                scale,
                seed=seed,
                scheme=scheme,
                query_rate=rate,
                churn=churn_for(level),
            )
            for level in levels
            for scheme in schemes
        },
        replications,
        workers=workers,
        experiment=EXPERIMENT_ID,
    )
    rows = []
    for (level, scheme), aggregated in results.items():
        dropped = sum(r.dropped_messages for r in aggregated.runs)
        incomplete = sum(r.incomplete_queries for r in aggregated.runs)
        # Tail latency across replications: churn hurts the tail
        # long before it moves the mean.
        p95s = [
            r.latency_percentiles["p95"]
            for r in aggregated.runs
            if "p95" in r.latency_percentiles
        ]
        rows.append(
            {
                "churn_rate": level,
                "scheme": scheme,
                "latency": aggregated.latency.mean,
                "latency_p95": max(p95s) if p95s else float("nan"),
                "cost": aggregated.cost.mean,
                "dropped_msgs": dropped,
                "incomplete": incomplete,
                "population": aggregated.runs[-1].final_population,
            }
        )

    checks = []
    if "dup" in schemes:
        quiet = results[(levels[0], "dup")].latency.mean
        stormy = results[(levels[-1], "dup")].latency.mean
        checks.append(
            ShapeCheck(
                claim=(
                    "DUP degrades gracefully under churn (latency within "
                    "4x of the churn-free value at the highest level)"
                ),
                passed=stormy <= max(quiet * 4, quiet + 0.5),
                detail=f"quiet={quiet:.4g} stormy={stormy:.4g}",
            )
        )
        if "pcx" in schemes:
            for level in levels:
                dup = results[(level, "dup")].latency.mean
                pcx = results[(level, "pcx")].latency.mean
                checks.append(
                    ShapeCheck(
                        claim=f"DUP still beats PCX at churn={level:g}",
                        passed=dup <= pcx * 1.05 + 1e-9,
                        detail=f"dup={dup:.4g} pcx={pcx:.4g}",
                    )
                )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        rows=rows,
        shape_checks=tuple(checks),
        notes=(
            "No paper figure exists for churn; this quantifies the "
            "Section III-C claim that repair overhead is small."
        ),
    )
