"""Figure 6: the effects of the maximum node degree D.

Larger D makes the index search tree shallower (the node count is fixed),
so every scheme's latency falls with D — and PCX benefits the most since
its misses pay full path lengths.  The paper's punchline: "DUP still has
much lower cost than PCX and CUP, even when D is as large as ten."
"""

from __future__ import annotations

from repro.engine.runner import compare_many
from repro.experiments.common import PAPER_SCHEMES, base_config
from repro.experiments.format import monotone
from repro.experiments.spec import ExperimentResult, ShapeCheck

EXPERIMENT_ID = "figure6"
TITLE = "Effects of the maximum node degree D"

DEGREES = (2, 4, 6, 8, 10)
RATE = 10.0


def run(
    scale: str = "bench",
    replications: int = 2,
    seed: int = 1,
    degrees=DEGREES,
    rate: float = RATE,
    workers=None,
) -> ExperimentResult:
    """Regenerate Figure 6 (a) and (b)."""
    comparisons = compare_many(
        {
            degree: base_config(
                scale, seed=seed, max_degree=degree, query_rate=rate
            )
            for degree in degrees
        },
        PAPER_SCHEMES,
        replications,
        workers=workers,
        experiment=EXPERIMENT_ID,
    )

    rows = []
    for degree, comparison in comparisons.items():
        row = {"D": degree}
        for scheme in PAPER_SCHEMES:
            row[f"latency_{scheme}"] = comparison.latency(scheme).mean
        for scheme in ("cup", "dup"):
            row[f"relcost_{scheme}"] = comparison.relative_cost[scheme].mean
        rows.append(row)

    checks = []
    for scheme in PAPER_SCHEMES:
        series = [comparisons[d].latency(scheme).mean for d in degrees]
        # DUP's latency can sit at (numerically) zero across the whole
        # sweep — subscribers simply never miss; a flat-zero series
        # satisfies the claim trivially.
        flat_zero = max(series) < 5e-3
        checks.append(
            ShapeCheck(
                claim=f"{scheme} latency decreases with D (Fig 6a)",
                passed=flat_zero
                or monotone(series, decreasing=True, slack=0.35),
                detail=f"{[round(v, 4) for v in series]}",
            )
        )
    largest = max(degrees)
    rel_dup = comparisons[largest].relative_cost["dup"].mean
    rel_cup = comparisons[largest].relative_cost["cup"].mean
    checks.append(
        ShapeCheck(
            claim=(
                "DUP keeps the lowest cost even at D=10 (Fig 6b: 'much "
                "lower cost than PCX and CUP, even when D is as large as ten')"
            ),
            passed=rel_dup < rel_cup and rel_dup < 1.0,
            detail=f"dup={rel_dup:.3f} cup={rel_cup:.3f}",
        )
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        rows=rows,
        shape_checks=tuple(checks),
        notes=f"run at lambda={rate:g}",
    )
