"""One module per paper table/figure, plus ablations and the churn study.

Every experiment exposes ``run(scale=..., replications=..., seed=...)``
returning an :class:`~repro.experiments.spec.ExperimentResult` that

- carries the rows/series the paper reports (``rows``),
- renders them as the paper's table or figure data (``render()``), and
- self-checks the paper's qualitative claims (``shape_checks``).

``scale="bench"`` (default) uses laptop-sized populations and horizons;
``scale="paper"`` uses the full Table I parameters (slow in pure Python —
hours per experiment, as in the original study).
"""

from repro.experiments.registry import get_experiment, list_experiments
from repro.experiments.spec import ExperimentResult, ShapeCheck

__all__ = [
    "ExperimentResult",
    "ShapeCheck",
    "get_experiment",
    "list_experiments",
]
