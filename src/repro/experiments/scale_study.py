"""Scale study: sharded multi-key runs over large populations.

The paper evaluates one index over 4096 nodes; this study exercises the
scale tier — the batched event kernel, lazy per-key trees, vectorized
TTL sweeps, and conditional-Zipf shard thinning — by sweeping a
(nodes x keys) grid with :func:`repro.engine.multikey.run_scale` and
checking the structural claims that make the tier trustworthy:

- shards conserve the workload (per-key query counts sum to the total);
- DUP's push warmth survives scale (hit rate stays high as the grid
  grows);
- lazy trees pay only for touched state (materialized parent pointers
  stay well below the eager ``nodes x keys`` bill);
- the sweep loop actually reclaims entries (resident + swept accounting
  closes).

Rows contain **no wall-clock or RSS numbers** — those are measurement
artifacts of the machine, recorded by ``benchmarks/bench_scale.py``
into ``BENCH_scale.json``; the golden covering this experiment must
stay bit-stable across hosts.
"""

from __future__ import annotations

from repro.engine.multikey import default_shard_count, run_scale
from repro.experiments.common import base_config
from repro.experiments.spec import ExperimentResult, ShapeCheck

EXPERIMENT_ID = "scale"
TITLE = "Scale tier: sharded multi-key runs (nodes x keys grid)"

#: (num_nodes, num_keys) per scale.  The paper-scale point is the
#: 10^5-node, 1024-key run the tier exists for.
GRIDS = {
    "smoke": ((256, 32),),
    "quick": ((512, 64), (1024, 128)),
    "bench": ((2048, 256), (8192, 512)),
    "paper": ((32768, 1024), (100_000, 1024)),
}

#: Keys-per-node ceiling for the scale study's workload knobs.
KEY_ZIPF_THETA = 0.8


def run(
    scale: str = "bench",
    replications: int = 1,
    seed: int = 1,
    workers=None,
    grid=None,
    scheme: str = "dup",
) -> ExperimentResult:
    """Sweep the (nodes, keys) grid with the sharded scale engine.

    ``replications`` is accepted for registry-signature parity but the
    study runs one seed per grid point: a scale point is a capacity
    measurement, not a stochastic estimate.
    """
    if grid is None:
        grid = GRIDS.get(scale, GRIDS["bench"])
    rows = []
    checks = []
    for num_nodes, num_keys in grid:
        config = base_config(
            scale,
            seed=seed,
            num_nodes=num_nodes,
            topology="chord",
            scheme=scheme,
            keep_latency_samples=False,
        )
        shards = default_shard_count(num_keys)
        result = run_scale(
            config,
            num_keys=num_keys,
            key_zipf_theta=KEY_ZIPF_THETA,
            shard_count=shards,
            workers=workers,
        )
        extras = result.extras
        rows.append(
            {
                "nodes": num_nodes,
                "keys": num_keys,
                "shards": shards,
                "queries": result.queries,
                "mean_latency": result.mean_latency,
                "hit_rate": result.hit_rate,
                "cost_per_query": result.cost_per_query,
                "latency_p95": extras["latency_p95"],
                "total_subscriptions": extras["total_subscriptions"],
                "max_fanout": extras["max_fanout"],
                "parents_touched": extras["parents_touched"],
                "swept_entries": extras["swept_entries"],
                "resident_entries": extras["resident_entries"],
            }
        )
        conserved = sum(extras["queries_per_key"].values())
        hits = int(extras["hits"])
        misses = result.queries - hits
        checks.append(
            ShapeCheck(
                claim=(
                    f"shards conserve the workload at {num_nodes}x{num_keys}"
                    " (per-key counts sum to the total)"
                ),
                passed=conserved == result.queries,
                detail=f"sum(per-key)={conserved} total={result.queries}",
            )
        )
        checks.append(
            ShapeCheck(
                claim=(
                    f"{scheme} stays push-warm at {num_nodes}x{num_keys} "
                    "(hit rate above one half)"
                ),
                passed=result.queries > 0 and result.hit_rate > 0.5,
                detail=(
                    f"hit_rate={result.hit_rate:.3f} "
                    f"({hits} hits / {misses} misses)"
                ),
            )
        )
        touched = int(extras["parents_touched"])
        eager = num_nodes * num_keys
        checks.append(
            ShapeCheck(
                claim=(
                    f"lazy trees pay only for touched state at "
                    f"{num_nodes}x{num_keys} (below the eager bill)"
                ),
                passed=0 < touched < eager,
                detail=f"touched={touched} eager={eager}",
            )
        )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        rows=rows,
        shape_checks=tuple(checks),
        notes=(
            "Sharded multi-key runs via run_scale(); shard count is a "
            "pure function of the key count, so every number is "
            "worker-count invariant.  Wall-clock and peak RSS live in "
            "BENCH_scale.json, never in these rows."
        ),
    )
