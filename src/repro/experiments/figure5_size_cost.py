"""Figure 5: relative access cost as a function of the number of nodes.

The paper plots CUP's and DUP's cost relative to PCX while the overlay
grows, and observes: "CUP performs better than PCX, but the difference
becomes smaller as the number of nodes increases.  When the number of
nodes increases, more nodes fall between an interested node and the
authority node, which incurs larger pushing overhead in CUP.  DUP is able
to reduce the pushing overhead by skipping unnecessary nodes; therefore
its relative performance compared to PCX still increases."

To isolate exactly that mechanism we hold the *per-node* query rate
constant while the network grows (a fixed network-wide lambda would
simultaneously dilute per-node popularity, conflating interest density
with path length — see EXPERIMENTS.md).  The density is chosen so the
interested set stays sparse, the regime where relay chains matter.
"""

from __future__ import annotations

from repro.engine.runner import compare_many
from repro.experiments.common import PAPER_SCHEMES, base_config
from repro.experiments.spec import ExperimentResult, ShapeCheck

EXPERIMENT_ID = "figure5"
TITLE = "Relative cost vs. the number of nodes"

BENCH_SIZES = (128, 512, 2048)
PAPER_SIZES = (256, 1024, 4096, 16384)

#: Queries per second per node; sparse-interest regime (the network-wide
#: rate is density * n).
DENSITY = 0.004


def run(
    scale: str = "bench",
    replications: int = 2,
    seed: int = 1,
    sizes=None,
    density: float = DENSITY,
    workers=None,
) -> ExperimentResult:
    """Regenerate Figure 5."""
    if sizes is None:
        sizes = BENCH_SIZES if scale != "paper" else PAPER_SIZES
    comparisons = compare_many(
        {
            size: base_config(
                scale, seed=seed, num_nodes=size, query_rate=density * size
            )
            for size in sizes
        },
        PAPER_SCHEMES,
        replications,
        workers=workers,
        experiment=EXPERIMENT_ID,
    )

    rows = [
        {
            "n": size,
            "lambda": density * size,
            "relcost_cup": comparison.relative_cost["cup"].mean,
            "relcost_dup": comparison.relative_cost["dup"].mean,
        }
        for size, comparison in comparisons.items()
    ]

    rel_dup = [comparisons[s].relative_cost["dup"].mean for s in sizes]
    rel_cup = [comparisons[s].relative_cost["cup"].mean for s in sizes]
    first_gap = rel_cup[0] - rel_dup[0]
    last_gap = rel_cup[-1] - rel_dup[-1]
    checks = [
        ShapeCheck(
            claim="DUP relative cost below CUP's at every size",
            passed=all(d < c for d, c in zip(rel_dup, rel_cup)),
            detail=f"dup={[round(v, 3) for v in rel_dup]} "
            f"cup={[round(v, 3) for v in rel_cup]}",
        ),
        ShapeCheck(
            claim=(
                "CUP's benefit shrinks with n (its relative cost does not "
                "improve as the network grows, Fig 5)"
            ),
            passed=rel_cup[-1] >= rel_cup[0] - 0.02,
            detail=f"cup at n={sizes[0]}: {rel_cup[0]:.3f}; "
            f"at n={sizes[-1]}: {rel_cup[-1]:.3f}",
        ),
        ShapeCheck(
            claim=(
                "DUP's advantage over CUP widens with n (it skips the "
                "growing relay chains, Fig 5)"
            ),
            passed=last_gap >= first_gap - 0.02,
            detail=f"gap at n={sizes[0]}: {first_gap:.3f}; "
            f"at n={sizes[-1]}: {last_gap:.3f}",
        ),
        ShapeCheck(
            claim="both push schemes stay below PCX (relative cost < 1)",
            passed=all(v < 1.0 for v in rel_dup + rel_cup),
        ),
    ]
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        rows=rows,
        shape_checks=tuple(checks),
        notes=(
            f"constant per-node rate {density:g}/s (network lambda grows "
            "with n); isolates the relay-chain-length effect the paper "
            "describes"
        ),
    )
