"""Overload study: graceful degradation under adversarial storms.

The paper's evaluation offers load the schemes can always absorb: every
arriving message is processed instantly.  This experiment gives every
node a finite service rate (:class:`~repro.net.overload.OverloadPlan`)
and drives the overlay with the three storm kinds of
:mod:`repro.workload.storms` at increasing intensity, comparing:

- ``dup-raw`` — DUP with the service-rate model but **no protection**:
  an effectively unbounded inbox, no shedding, no breakers, no fanout
  cap, no coalescing.  Queues at hot interior nodes are free to grow
  without limit — the collapse baseline.
- ``dup-shed`` — DUP with the full overload layer: bounded
  priority-classed inboxes (control outranks data), per-peer circuit
  breakers fed by retry give-ups and subscribe NACKs, the
  ``max_subscribers`` fanout cap with redirect-to-parent refusals, and
  authority update coalescing.
- ``cup`` / ``pcx`` — the baselines under the same bounded inboxes and
  registration cap (breakers and coalescing are DUP-side machinery).

Reported per (intensity, variant): latency (mean and p99, in hops),
cost per query, goodput (completed queries per post-warm-up second —
offered load rises with intensity, so a flat goodput means absorbed,
a falling one means collapsing), shed fraction, control-class sheds,
queue-depth tails, breaker trips, refused subscribers, and coalesced
updates.

The qualitative claims checked: the unprotected baseline's queue depth
grows superlinearly with storm intensity while the protected run keeps
queues bounded by the configured capacity, sheds only data-class
traffic (zero control drops), and keeps goodput from collapsing.
"""

from __future__ import annotations

import math

from repro.engine.runner import replicate_many
from repro.experiments.common import base_config
from repro.experiments.spec import ExperimentResult, ShapeCheck
from repro.net.overload import OverloadPlan
from repro.workload.storms import StormPhase, StormPlan

EXPERIMENT_ID = "overload"
TITLE = "Graceful degradation under overload storms"

#: Storm intensity multipliers per sweep level (0 = no storm).
BENCH_INTENSITIES = (0.0, 1.0, 2.0, 4.0)
SMOKE_INTENSITIES = (0.0, 1.0, 4.0)

VARIANTS = ("dup-raw", "dup-shed", "cup", "pcx")
PROTECTED = ("dup-shed", "cup", "pcx")

#: Base network-wide query rate (queries/second).
RATE = 3.0
#: Per-node service rate (messages/second).  Chosen so the storm-free
#: run is comfortably under capacity while a high-intensity update storm
#: (per-subscriber push arrival = storm rate) pushes nodes past it.
SERVICE_RATE = 1.5
#: Protected inbox bound; the unprotected variant gets this stand-in
#: for "infinite".
INBOX_CAPACITY = 48
UNBOUNDED = 1_000_000_000
#: DUP fanout / CUP registration cap for the protected variants.  The
#: search tree's node degree tops out around 4, so the cap must sit
#: below that to ever bind.
MAX_SUBSCRIBERS = 3
#: Breaker parameters (dup-shed only; fed by give-ups and NACKs).
BREAKER_THRESHOLD = 3
BREAKER_COOLDOWN = 120.0
#: Minimum gap between forced authority issues (update-storm shedding).
COALESCE_GAP = 30.0
#: Reliable-channel parameters for ``dup-shed`` only.  The raw variant
#: keeps the plain unreliable transport: retries are part of the
#: protected stack, and a raw run with retries "protects" itself by
#: accident — give-ups at an overloaded peer trigger suspicion, tear
#: down the hot subscription, and cap the very queue growth the
#: baseline exists to exhibit.
RETRY_BUDGET = 3
ACK_TIMEOUT = 2.0
RETRY_TIMEOUT_CAP = 16.0

#: Storm event rates at intensity 1 (scaled linearly by intensity).
#: UPDATE_RATE straddles SERVICE_RATE across the sweep: subcritical at
#: intensity 1, supercritical (uncoalesced push arrival > service rate)
#: at 2 and beyond — that crossing is what makes unprotected queue
#: growth superlinear in intensity.
FLASH_RATE = 2.0 * RATE
FLASH_RANK_FLIPS = 8
UPDATE_RATE = 0.5
THRASH_RATE = 0.05
#: Queries per thrash burst, aimed at one node: sized to overflow a
#: bounded inbox so the protected run demonstrably sheds.
THRASH_BURST = 2 * INBOX_CAPACITY


def _storm_config(seed: int):
    """The purpose-built base every scale of this study runs on.

    The TTL is short relative to the Zipf tail's per-node query gap so
    tail nodes are genuinely cold between thrash bursts — at ttl=600 the
    whole 64-node overlay stays warm and no storm can make DUP forward
    anything.  Stock quick/full configs keep their long TTL and bigger
    overlay, which only scales *offered* control load past what any
    bounded inbox can absorb (the flash crowd's subscribe flood exceeds
    the service rate outright, forcing control-class drops) without
    adding phenomenon; ``scale`` therefore selects the intensity grid,
    not the topology.
    """
    return base_config(
        "quick",
        seed=seed,
        num_nodes=64,
        ttl=120.0,
        push_lead=30.0,
        warmup=900.0,
        duration=3600.0,
    )


def _storm_plan(base, intensity: float):
    """The three overlapping storm phases, scaled by ``intensity``."""
    if intensity <= 0:
        return None
    warmup = base.warmup
    window = base.duration - warmup
    return StormPlan(
        phases=(
            StormPhase(
                kind="flash-crowd",
                start=warmup + 0.1 * window,
                duration=0.6 * window,
                rate=FLASH_RATE * intensity,
                rank_flips=FLASH_RANK_FLIPS,
            ),
            StormPhase(
                kind="update-storm",
                start=warmup + 0.2 * window,
                duration=0.5 * window,
                rate=UPDATE_RATE * intensity,
            ),
            StormPhase(
                kind="thrash",
                start=warmup + 0.3 * window,
                duration=0.4 * window,
                rate=THRASH_RATE * intensity,
                burst=THRASH_BURST,
            ),
        )
    )


def _overload_plan(variant: str) -> OverloadPlan:
    if variant == "dup-raw":
        # Service model only: queues build but nothing protects them.
        return OverloadPlan(
            service_rate=SERVICE_RATE,
            inbox_capacity=UNBOUNDED,
            coalesce_pushes=False,
        )
    plan = dict(
        service_rate=SERVICE_RATE,
        inbox_capacity=INBOX_CAPACITY,
        max_subscribers=MAX_SUBSCRIBERS,
        authority_coalesce_gap=COALESCE_GAP,
    )
    if variant == "dup-shed":
        plan.update(
            breaker_threshold=BREAKER_THRESHOLD,
            breaker_cooldown=BREAKER_COOLDOWN,
        )
    return OverloadPlan(**plan)


def _variant_config(base, variant: str, intensity: float):
    scheme = {"dup-raw": "dup", "dup-shed": "dup"}.get(variant, variant)
    config = base.replace(
        scheme=scheme,
        overload=_overload_plan(variant),
        storms=_storm_plan(base, intensity),
    )
    if variant == "dup-shed":
        config = config.replace(
            retry_budget=RETRY_BUDGET,
            ack_timeout=ACK_TIMEOUT,
            retry_timeout_cap=RETRY_TIMEOUT_CAP,
        )
    return config


def _mean(values) -> float:
    values = [v for v in values if not math.isnan(v)]
    if not values:
        return float("nan")
    return sum(values) / len(values)


def run(
    scale: str = "bench",
    replications: int = 2,
    seed: int = 1,
    intensities=None,
    rate: float = RATE,
    workers=None,
) -> ExperimentResult:
    """Sweep storm intensity for every variant.

    ``scale`` picks the intensity grid (smoke: 3 points, otherwise 4);
    the topology is always the purpose-built storm config — see
    :func:`_storm_config` for why larger stock scales add nothing here.
    """
    if intensities is None:
        intensities = (
            SMOKE_INTENSITIES if scale == "smoke" else BENCH_INTENSITIES
        )
    base = _storm_config(seed).replace(query_rate=rate)

    results = replicate_many(
        {
            (intensity, variant): _variant_config(base, variant, intensity)
            for intensity in intensities
            for variant in VARIANTS
        },
        replications,
        workers=workers,
        experiment=EXPERIMENT_ID,
    )
    horizon = base.duration - base.warmup
    rows = []
    for (intensity, variant), aggregated in results.items():
        runs = aggregated.runs
        extras = [dict(r.extras) for r in runs]

        def total(key):
            return sum(int(e.get(key, 0)) for e in extras)

        rows.append(
            {
                "intensity": intensity,
                "variant": variant,
                "latency": aggregated.latency.mean,
                "p99": _mean(
                    [
                        float(r.latency_percentiles.get("p99", "nan"))
                        for r in runs
                    ]
                ),
                "cost": aggregated.cost.mean,
                "goodput": sum(r.queries for r in runs)
                / (len(runs) * horizon),
                "shed_frac": _mean(
                    [float(e.get("shed_fraction", 0.0)) for e in extras]
                ),
                "shed_control": total("overload_shed_control"),
                "max_qdepth": max(
                    int(e.get("max_queue_depth", 0)) for e in extras
                ),
                "qdepth_p99": _mean(
                    [float(e.get("queue_depth_p99", 0)) for e in extras]
                ),
                "breaker_trips": total("breaker_trips"),
                "rejected": total("rejected_subscribers"),
                "coalesced": total("pushes_coalesced")
                + total("authority_coalesced_updates"),
                "give_ups": total("delivery_give_ups"),
            }
        )

    checks = _shape_checks(scale, intensities, results, horizon)
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        rows=rows,
        shape_checks=tuple(checks),
        notes=(
            "No paper figure exists for overload; the paper offers load "
            "the schemes always absorb.  'dup-raw' has the same service "
            "model but no protection (the collapse baseline); latency "
            "is in hops, so collapse shows up in queue depth and "
            "goodput rather than in hop counts."
        ),
    )


def _depth(results, intensity, variant) -> int:
    return max(
        int(r.extras.get("max_queue_depth", 0))
        for r in results[(intensity, variant)].runs
    )


def _goodput(results, intensity, variant, horizon) -> float:
    runs = results[(intensity, variant)].runs
    return sum(r.queries for r in runs) / (len(runs) * horizon)


def _shape_checks(scale, intensities, results, horizon):
    checks = []
    stormy = [i for i in intensities if i > 0]
    if not stormy:
        return checks
    top = max(stormy)

    shed_control = sum(
        int(r.extras.get("overload_shed_control", 0))
        for intensity in intensities
        for variant in PROTECTED
        for r in results[(intensity, variant)].runs
    )
    checks.append(
        ShapeCheck(
            claim=(
                "protected variants never drop control-class traffic "
                "(control evicts queued data instead)"
            ),
            passed=shed_control == 0,
            detail=f"control_sheds={shed_control}",
        )
    )

    raw_depth = _depth(results, top, "dup-raw")
    shed_depth = _depth(results, top, "dup-shed")
    checks.append(
        ShapeCheck(
            claim=(
                f"at intensity {top:g} the unprotected queue outgrows "
                "the protected bound"
            ),
            passed=shed_depth <= INBOX_CAPACITY + 1
            and raw_depth > shed_depth,
            detail=f"raw={raw_depth} shed={shed_depth} "
            f"cap={INBOX_CAPACITY}",
        )
    )

    # At the highest intensity DUP can absorb the storm outright: the
    # flash crowd pushes every node over the subscribe threshold, the
    # whole overlay goes warm, and nothing is left to shed.  The claim
    # is therefore "the machinery engages somewhere in the sweep", not
    # "it sheds at the top".
    shed_by_intensity = {
        intensity: _mean(
            [
                float(r.extras.get("shed_fraction", 0.0))
                for r in results[(intensity, "dup-shed")].runs
            ]
        )
        for intensity in stormy
    }
    checks.append(
        ShapeCheck(
            claim=(
                "the protected run sheds at some storm intensity "
                "(degradation is exercised, not idle)"
            ),
            passed=any(v > 0 for v in shed_by_intensity.values()),
            detail=" ".join(
                f"i{i:g}={v:.4g}" for i, v in shed_by_intensity.items()
            ),
        )
    )

    calm = _goodput(results, intensities[0], "dup-shed", horizon)
    stressed = _goodput(results, top, "dup-shed", horizon)
    checks.append(
        ShapeCheck(
            claim=(
                f"protected goodput does not collapse at intensity "
                f"{top:g} (>= 50% of the storm-free rate)"
            ),
            passed=stressed >= 0.5 * calm,
            detail=f"calm={calm:.4g}/s stressed={stressed:.4g}/s",
        )
    )

    if scale == "smoke" or len(stormy) < 2:
        # Superlinearity needs at least two storm levels with enough
        # events behind them; CI-sized runs check the bounds above only.
        return checks

    low = min(stormy)
    raw_low = _depth(results, low, "dup-raw")
    ratio = raw_depth / max(raw_low, 1)
    checks.append(
        ShapeCheck(
            claim=(
                "unprotected queue depth grows superlinearly with storm "
                f"intensity ({low:g} -> {top:g})"
            ),
            passed=ratio > (top / low),
            detail=(
                f"depth {raw_low} -> {raw_depth} (x{ratio:.2f} vs "
                f"intensity x{top / low:.2f})"
            ),
        )
    )
    return checks
