"""Table III: query latency of PCX / CUP / DUP as the network grows.

The paper varies the number of nodes at three query rates and reports the
average query latency for each scheme, observing that (a) every scheme's
latency grows with the network (search paths get longer) and (b) DUP is
the best everywhere, "in many cases an order of magnitude better than
CUP".
"""

from __future__ import annotations

from repro.engine.runner import compare_many
from repro.experiments.common import PAPER_SCHEMES, base_config
from repro.experiments.format import monotone
from repro.experiments.spec import ExperimentResult, ShapeCheck

EXPERIMENT_ID = "table3"
TITLE = "Latency comparison as the number of nodes changes"

BENCH_SIZES = (256, 1024, 4096)
PAPER_SIZES = (256, 1024, 4096, 16384)
RATES = (0.1, 1.0, 10.0)


def run(
    scale: str = "bench",
    replications: int = 2,
    seed: int = 1,
    sizes=None,
    rates=RATES,
    workers=None,
) -> ExperimentResult:
    """Regenerate Table III."""
    if sizes is None:
        sizes = PAPER_SIZES if scale in ("quick", "paper") else BENCH_SIZES
    comparisons = compare_many(
        {
            (rate, size): base_config(
                scale, seed=seed, query_rate=rate, num_nodes=size
            )
            for rate in rates
            for size in sizes
        },
        PAPER_SCHEMES,
        replications,
        workers=workers,
        experiment=EXPERIMENT_ID,
    )

    rows = []
    for rate in rates:
        for scheme in PAPER_SCHEMES:
            rows.append(
                {
                    "row": f"{scheme} latency (lambda={rate:g})",
                    **{
                        f"n={size}": comparisons[(rate, size)]
                        .latency(scheme)
                        .mean
                        for size in sizes
                    },
                }
            )

    checks = []
    for rate in rates:
        for scheme in PAPER_SCHEMES:
            series = [
                comparisons[(rate, size)].latency(scheme).mean
                for size in sizes
            ]
            checks.append(
                ShapeCheck(
                    claim=(
                        f"{scheme} latency grows with n at lambda={rate:g} "
                        "(Table III rows)"
                    ),
                    passed=monotone(series, decreasing=False, slack=0.2),
                    detail=f"{[round(v, 4) for v in series]}",
                )
            )
        for size in sizes:
            comparison = comparisons[(rate, size)]
            dup = comparison.latency("dup").mean
            cup = comparison.latency("cup").mean
            pcx = comparison.latency("pcx").mean
            checks.append(
                ShapeCheck(
                    claim=(
                        f"dup best at n={size}, lambda={rate:g} "
                        "(Table III columns)"
                    ),
                    passed=dup <= cup * 1.05 + 1e-9 and dup <= pcx * 1.05 + 1e-9,
                    detail=f"dup={dup:.4g} cup={cup:.4g} pcx={pcx:.4g}",
                )
            )
    # The order-of-magnitude claim, checked where pushes matter most.
    best_ratio = 0.0
    for (rate, size), comparison in comparisons.items():
        cup = comparison.latency("cup").mean
        dup = comparison.latency("dup").mean
        if dup > 0:
            best_ratio = max(best_ratio, cup / dup)
    checks.append(
        ShapeCheck(
            claim=(
                "in some cell DUP's latency is >= 5x better than CUP's "
                "(paper: 'an order of magnitude better' in many cases)"
            ),
            passed=best_ratio >= 5.0,
            detail=f"best cup/dup latency ratio = {best_ratio:.1f}x",
        )
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        rows=rows,
        shape_checks=tuple(checks),
    )
