"""Resilience study: DUP's hard state under loss and silent failures.

The paper's evaluation assumes every hop is delivered and every crash is
announced to the repair machinery instantly (Section III-C's failure
cases fire "when a node detects the failure" — detection itself is
assumed).  This experiment drops both assumptions and sweeps the
control/push loss rate for four variants on the same seeds:

- ``dup-reliable`` — DUP with the full resilience stack: acked/retried
  control messages and pushes, lease-based soft-state subscriptions, and
  *silent* failures (crashed nodes blackhole traffic until a survivor's
  exhausted retries or expired lease raises the suspicion that triggers
  the Section III-C flows).
- ``dup-oracle`` — DUP under the same message loss but with the paper's
  oracle failure detection and no retries/leases: the upper bound the
  detection machinery is measured against.
- ``cup`` / ``pcx`` — the baselines under the same loss (their soft
  state needs no reliable channel; failures stay oracle-notified since
  neither has a detection mechanism to exercise).

Reported per (loss level, variant): latency, cost per query, stale-read
fraction, incomplete queries, retries, lease expiries, injected losses,
and — for ``dup-reliable`` — the failure-detection-latency percentiles.
"""

from __future__ import annotations

import math

from repro.engine.runner import replicate_many
from repro.experiments.common import base_config
from repro.experiments.spec import ExperimentResult, ShapeCheck
from repro.net.faults import FaultPlan
from repro.workload.churn import ChurnConfig

EXPERIMENT_ID = "resilience"
TITLE = "DUP under message loss and silent failures"

#: Fraction of control/push transmissions lost, per sweep level.
BENCH_LEVELS = (0.0, 0.05, 0.1, 0.2)
SMOKE_LEVELS = (0.0, 0.1)
#: Network-wide query rate (matches the churn study: high enough that
#: the DUP tree is populated and pushes flow every TTL cycle).
RATE = 3.0
#: Total churn intensity in events/second; joins and crashes only, so
#: every departure exercises the failure (not the graceful-leave) path.
CHURN = 0.01
#: Resilience-stack parameters for the ``dup-reliable`` variant.
RETRY_BUDGET = 4
ACK_TIMEOUT = 2.0

VARIANTS = ("dup-reliable", "dup-oracle", "cup", "pcx")


def _smoke_config(seed: int) -> "object":
    """A CI-sized base: one minute of wall clock for the whole sweep."""
    return base_config(
        "quick",
        seed=seed,
        num_nodes=64,
        ttl=600.0,
        push_lead=60.0,
        warmup=900.0,
        duration=3600.0,
    )


def _fault_plan(level: float, silent: bool) -> FaultPlan | None:
    if level == 0.0 and not silent:
        return None
    return FaultPlan(
        loss_by_category={"control": level, "push": level},
        silent_failures=silent,
    )


def _variant_config(base, variant: str, level: float):
    if variant == "dup-reliable":
        return base.replace(
            scheme="dup",
            faults=_fault_plan(level, silent=True),
            retry_budget=RETRY_BUDGET,
            ack_timeout=ACK_TIMEOUT,
            lease_ttl=base.ttl / 2.0,
        )
    scheme = {"dup-oracle": "dup"}.get(variant, variant)
    return base.replace(scheme=scheme, faults=_fault_plan(level, silent=False))


def _mean(values) -> float:
    values = [v for v in values if not math.isnan(v)]
    if not values:
        return float("nan")
    return sum(values) / len(values)


def run(
    scale: str = "bench",
    replications: int = 2,
    seed: int = 1,
    levels=None,
    rate: float = RATE,
    workers=None,
) -> ExperimentResult:
    """Sweep the control/push loss rate for every variant."""
    if levels is None:
        levels = SMOKE_LEVELS if scale == "smoke" else BENCH_LEVELS
    base = (
        _smoke_config(seed) if scale == "smoke" else base_config(scale, seed=seed)
    ).replace(
        query_rate=rate,
        churn=ChurnConfig(join_rate=CHURN / 2, fail_rate=CHURN / 2),
    )

    results = replicate_many(
        {
            (level, variant): _variant_config(base, variant, level)
            for level in levels
            for variant in VARIANTS
        },
        replications,
        workers=workers,
        experiment=EXPERIMENT_ID,
    )
    rows = []
    for (level, variant), aggregated in results.items():
        runs = aggregated.runs
        extras = [dict(r.extras) for r in runs]

        def total(key):
            return sum(int(e.get(key, 0)) for e in extras)

        rows.append(
            {
                "loss_rate": level,
                "variant": variant,
                "latency": aggregated.latency.mean,
                "cost": aggregated.cost.mean,
                "stale_frac": _mean(
                    [r.stale_read_fraction for r in runs]
                ),
                "incomplete": sum(r.incomplete_queries for r in runs),
                "inj_losses": total("injected_losses"),
                "retries": total("retries"),
                "lease_exp": total("lease_expiries"),
                "det_p50": _mean(
                    [float(e.get("detection_p50", "nan")) for e in extras]
                ),
                "det_p95": _mean(
                    [float(e.get("detection_p95", "nan")) for e in extras]
                ),
            }
        )

    checks = _shape_checks(scale, levels, results)
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        rows=rows,
        shape_checks=tuple(checks),
        notes=(
            "No paper figure exists for faults; this probes the Section "
            "III-C assumption that failures are detected instantly and "
            "repair messages never lost.  'dup-oracle' is the paper's "
            "benign-detection upper bound."
        ),
    )


def _stale(result) -> float:
    return _mean([r.stale_read_fraction for r in result.runs])


def _shape_checks(scale, levels, results):
    checks = []
    lossy = [level for level in levels if level > 0]
    if not lossy:
        return checks
    # The level closest to the headline 10%-loss operating point.
    probe = min(lossy, key=lambda level: abs(level - 0.1))

    reliable = results[(probe, "dup-reliable")]
    retries = sum(int(r.extras.get("retries", 0)) for r in reliable.runs)
    acked = sum(int(r.extras.get("acked", 0)) for r in reliable.runs)
    checks.append(
        ShapeCheck(
            claim=(
                f"the reliable channel is exercised at loss={probe:g} "
                "(acks flow and lost transmissions are retried)"
            ),
            passed=acked > 0 and retries > 0,
            detail=f"acked={acked} retries={retries}",
        )
    )
    if scale == "smoke":
        # CI-sized runs see too few silent failures for the stale-read
        # comparison to be statistically meaningful; the full criteria
        # run at quick/bench/paper scales.
        return checks

    rel = _stale(results[(probe, "dup-reliable")])
    orc = _stale(results[(probe, "dup-oracle")])
    checks.append(
        ShapeCheck(
            claim=(
                "retries + leases keep DUP's stale-read fraction within "
                f"2x of oracle-repair DUP at loss={probe:g} despite "
                "silent failures"
            ),
            passed=(not math.isnan(rel))
            and (not math.isnan(orc))
            and rel <= max(2.0 * orc, orc + 0.02),
            detail=f"reliable={rel:.4g} oracle={orc:.4g}",
        )
    )
    detections = sum(
        1
        for r in results[(probe, "dup-reliable")].runs
        if "detection_p95" in r.extras
    )
    p95 = _mean(
        [
            float(r.extras.get("detection_p95", "nan"))
            for r in results[(probe, "dup-reliable")].runs
        ]
    )
    checks.append(
        ShapeCheck(
            claim=(
                "silent failures are detected (finite detection-latency "
                f"p95 at loss={probe:g})"
            ),
            passed=detections > 0 and math.isfinite(p95),
            detail=f"runs_with_detections={detections} p95={p95:.4g}s",
        )
    )
    return checks
