#!/usr/bin/env python
"""Perf-regression smoke gate: fail when the hot path gets >2x slower.

Times the figure4 arrival-rate sweep (quick scale, serial, one
replication — the workload whose wall-clock history lives in
``benchmarks/results/BENCH_figure4.json``) and compares against the
committed baseline entry.  The 2x budget absorbs hardware differences
between the machine that recorded the baseline and the one running the
gate; only a genuine hot-path regression blows through it.

On failure the run is repeated under :mod:`cProfile` and the hottest
functions are written to ``perf_smoke_profile.txt`` so the CI artifact
shows *where* the time went, not just that it went.

Environment overrides:

- ``PERF_SMOKE_BASELINE`` — baseline wall seconds (default: the newest
  ``history`` entry of BENCH_figure4.json with a recorded wall).
- ``PERF_SMOKE_BUDGET`` — allowed slowdown factor (default: 2.0).
"""

from __future__ import annotations

import json
import os
import pathlib
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).parent.parent / "src"))

from repro.experiments import figure4_arrival_rate  # noqa: E402

REPO = pathlib.Path(__file__).parent.parent
BENCH_RECORD = REPO / "benchmarks" / "results" / "BENCH_figure4.json"
PROFILE_OUT = REPO / "perf_smoke_profile.txt"
RATES = (0.1, 1.0, 3.0, 10.0, 30.0)


def _run() -> float:
    start = time.perf_counter()
    result = figure4_arrival_rate.run(
        scale="quick", replications=1, rates=RATES, workers=1
    )
    wall = time.perf_counter() - start
    if not result.all_shapes_hold:
        print("perf-smoke: paper shape checks FAILED", file=sys.stderr)
        raise SystemExit(2)
    return wall


def _baseline() -> float:
    override = os.environ.get("PERF_SMOKE_BASELINE")
    if override:
        return float(override)
    record = json.loads(BENCH_RECORD.read_text(encoding="utf-8"))
    walls = [
        entry["wall_seconds"]
        for entry in record.get("history", [])
        if isinstance(entry.get("wall_seconds"), (int, float))
    ]
    if not walls:
        print(
            f"perf-smoke: no usable history in {BENCH_RECORD}; "
            "set PERF_SMOKE_BASELINE",
            file=sys.stderr,
        )
        raise SystemExit(2)
    return float(walls[-1])


def _write_profile() -> None:
    import cProfile
    import pstats

    profiler = cProfile.Profile()
    profiler.enable()
    figure4_arrival_rate.run(
        scale="quick", replications=1, rates=RATES, workers=1
    )
    profiler.disable()
    with PROFILE_OUT.open("w", encoding="utf-8") as stream:
        stats = pstats.Stats(profiler, stream=stream)
        stats.strip_dirs().sort_stats("cumulative").print_stats(40)
    print(f"perf-smoke: profile written to {PROFILE_OUT}", file=sys.stderr)


def main() -> int:
    budget = float(os.environ.get("PERF_SMOKE_BUDGET", "2.0"))
    baseline = _baseline()
    wall = _run()
    limit = baseline * budget
    verdict = "OK" if wall <= limit else "REGRESSION"
    print(
        f"perf-smoke: wall {wall:.2f}s, baseline {baseline:.2f}s, "
        f"budget {budget:g}x (limit {limit:.2f}s) -> {verdict}"
    )
    if wall <= limit:
        return 0
    _write_profile()
    return 1


if __name__ == "__main__":
    sys.exit(main())
