#!/usr/bin/env python
"""Perf-regression smoke gate: fail when the hot path gets >2x slower.

Times the figure4 arrival-rate sweep (quick scale, serial, one
replication — the workload whose wall-clock history lives in
``benchmarks/results/BENCH_figure4.json``) and compares against the
committed baseline entry.  The 2x budget absorbs hardware differences
between the machine that recorded the baseline and the one running the
gate; only a genuine hot-path regression blows through it.

On failure the run is repeated under :mod:`cProfile` and the hottest
functions are written to ``perf_smoke_profile.txt`` so the CI artifact
shows *where* the time went, not just that it went.

A second leg guards the telemetry layer's zero-perturbation contract:
the figure4 smoke experiment is run with the protocol flight recorder
disabled and then enabled, and both canonical outputs must be
bit-identical to the committed ``tests/goldens/figure4_smoke.json``.
An armed recorder that drifts a single float fails here before it can
corrupt a science run.

A third leg guards the overload layer's off-is-off contract the same
way: the figure4 smoke experiment is rerun with a present-but-disabled
:class:`~repro.net.overload.OverloadPlan` attached to every config, and
the canonical output must still match the same golden bit for bit.

A fourth leg does the same for the peer-fluctuation layer: the run is
repeated with a present-but-inert
:class:`~repro.workload.sessions.SessionPlan` attached, and must again
match the golden bit for bit.

A fifth leg guards the batched kernel the same way: the main timing
gate above already runs with batched dispatch on (the default), so a
batched kernel slower than the committed PR-5 baseline fails the wall
check; this leg additionally reruns the smoke experiment with batching
switched off (``REPRO_BATCH=0`` equivalent) and requires the canonical
output to stay bit-identical to the golden.

Environment overrides:

- ``PERF_SMOKE_BASELINE`` — baseline wall seconds (default: the newest
  ``history`` entry of BENCH_figure4.json with a recorded wall).
- ``PERF_SMOKE_BUDGET`` — allowed slowdown factor (default: 2.0).
"""

from __future__ import annotations

import json
import os
import pathlib
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).parent.parent / "src"))

from repro import flightrec  # noqa: E402
from repro.experiments import figure4_arrival_rate  # noqa: E402

REPO = pathlib.Path(__file__).parent.parent
BENCH_RECORD = REPO / "benchmarks" / "results" / "BENCH_figure4.json"
PROFILE_OUT = REPO / "perf_smoke_profile.txt"
GOLDEN = REPO / "tests" / "goldens" / "figure4_smoke.json"
RATES = (0.1, 1.0, 3.0, 10.0, 30.0)


def _run() -> float:
    start = time.perf_counter()
    result = figure4_arrival_rate.run(
        scale="quick", replications=1, rates=RATES, workers=1
    )
    wall = time.perf_counter() - start
    if not result.all_shapes_hold:
        print("perf-smoke: paper shape checks FAILED", file=sys.stderr)
        raise SystemExit(2)
    return wall


def _baseline() -> float:
    override = os.environ.get("PERF_SMOKE_BASELINE")
    if override:
        return float(override)
    record = json.loads(BENCH_RECORD.read_text(encoding="utf-8"))
    walls = [
        entry["wall_seconds"]
        for entry in record.get("history", [])
        if isinstance(entry.get("wall_seconds"), (int, float))
    ]
    if not walls:
        print(
            f"perf-smoke: no usable history in {BENCH_RECORD}; "
            "set PERF_SMOKE_BASELINE",
            file=sys.stderr,
        )
        raise SystemExit(2)
    return float(walls[-1])


def _write_profile() -> None:
    import cProfile
    import pstats

    profiler = cProfile.Profile()
    profiler.enable()
    figure4_arrival_rate.run(
        scale="quick", replications=1, rates=RATES, workers=1
    )
    profiler.disable()
    with PROFILE_OUT.open("w", encoding="utf-8") as stream:
        stats = pstats.Stats(profiler, stream=stream)
        stats.strip_dirs().sort_stats("cumulative").print_stats(40)
    print(f"perf-smoke: profile written to {PROFILE_OUT}", file=sys.stderr)


def _canonical() -> "callable":
    """The golden canonicalizer, loaded from the test module itself so
    the gate and the test can never disagree about formatting."""
    import importlib.util

    spec = importlib.util.spec_from_file_location(
        "_golden_canonical", REPO / "tests" / "test_goldens.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module.canonical


def _telemetry_overhead_leg() -> int:
    """Recorder off and recorder on must both match the smoke golden."""
    from repro.experiments import get_experiment

    canonical = _canonical()
    expected = GOLDEN.read_text(encoding="utf-8")
    for armed in (False, True):
        previous = flightrec.set_enabled(armed)
        start = time.perf_counter()
        try:
            result = get_experiment("figure4")(
                scale="smoke", replications=1, seed=1, rates=(1.0, 10.0)
            )
        finally:
            flightrec.set_enabled(previous)
        wall = time.perf_counter() - start
        label = "on" if armed else "off"
        if canonical(result) != expected:
            print(
                f"perf-smoke: telemetry leg FAILED — recorder={label} "
                f"run drifted from {GOLDEN.name}",
                file=sys.stderr,
            )
            return 1
        print(
            f"perf-smoke: telemetry recorder={label} "
            f"bit-identical to golden ({wall:.2f}s)"
        )
    return 0


def _overload_off_identity_leg() -> int:
    """A present-but-disabled OverloadPlan must not move a single bit.

    ``figure4.run`` builds its configs through its module-bound
    ``base_config``, so the leg rebinds that name to a wrapper attaching
    an all-default (disabled) plan — the closest a stock experiment can
    get to "the layer is compiled in but off".
    """
    from repro.experiments import figure4_arrival_rate as fig4
    from repro.net.overload import OverloadPlan

    canonical = _canonical()
    expected = GOLDEN.read_text(encoding="utf-8")
    original = fig4.base_config

    def with_disabled_overload(scale, **kwargs):
        return original(scale, **kwargs).replace(overload=OverloadPlan())

    fig4.base_config = with_disabled_overload
    start = time.perf_counter()
    try:
        result = fig4.run(
            scale="smoke", replications=1, seed=1, rates=(1.0, 10.0)
        )
    finally:
        fig4.base_config = original
    wall = time.perf_counter() - start
    if canonical(result) != expected:
        print(
            "perf-smoke: overload leg FAILED — a disabled overload plan "
            f"drifted the run from {GOLDEN.name}",
            file=sys.stderr,
        )
        return 1
    print(
        f"perf-smoke: overload-off run bit-identical to golden ({wall:.2f}s)"
    )
    return 0


def _fluctuation_off_identity_leg() -> int:
    """A present-but-inert SessionPlan must not move a single bit."""
    from repro.experiments import figure4_arrival_rate as fig4
    from repro.workload.sessions import SessionPlan

    canonical = _canonical()
    expected = GOLDEN.read_text(encoding="utf-8")
    original = fig4.base_config

    def with_inert_sessions(scale, **kwargs):
        return original(scale, **kwargs).replace(sessions=SessionPlan())

    fig4.base_config = with_inert_sessions
    start = time.perf_counter()
    try:
        result = fig4.run(
            scale="smoke", replications=1, seed=1, rates=(1.0, 10.0)
        )
    finally:
        fig4.base_config = original
    wall = time.perf_counter() - start
    if canonical(result) != expected:
        print(
            "perf-smoke: fluctuation leg FAILED — an inert session plan "
            f"drifted the run from {GOLDEN.name}",
            file=sys.stderr,
        )
        return 1
    print(
        "perf-smoke: fluctuation-off run bit-identical to golden "
        f"({wall:.2f}s)"
    )
    return 0


def _batching_off_identity_leg() -> int:
    """Batch draining off must not move a single bit."""
    from repro import fastpath
    from repro.experiments import get_experiment

    canonical = _canonical()
    expected = GOLDEN.read_text(encoding="utf-8")
    previous = fastpath.set_batched(False)
    start = time.perf_counter()
    try:
        result = get_experiment("figure4")(
            scale="smoke", replications=1, seed=1, rates=(1.0, 10.0)
        )
    finally:
        fastpath.set_batched(previous)
    wall = time.perf_counter() - start
    if canonical(result) != expected:
        print(
            "perf-smoke: batched-kernel leg FAILED — the batching-off "
            f"run drifted from {GOLDEN.name}",
            file=sys.stderr,
        )
        return 1
    print(
        f"perf-smoke: batching-off run bit-identical to golden ({wall:.2f}s)"
    )
    return 0


def main() -> int:
    budget = float(os.environ.get("PERF_SMOKE_BUDGET", "2.0"))
    baseline = _baseline()
    wall = _run()
    limit = baseline * budget
    verdict = "OK" if wall <= limit else "REGRESSION"
    print(
        f"perf-smoke: wall {wall:.2f}s, baseline {baseline:.2f}s, "
        f"budget {budget:g}x (limit {limit:.2f}s) -> {verdict}"
    )
    if wall > limit:
        _write_profile()
        return 1
    return (
        _telemetry_overhead_leg()
        or _overload_off_identity_leg()
        or _fluctuation_off_identity_leg()
        or _batching_off_identity_leg()
    )


if __name__ == "__main__":
    sys.exit(main())
