#!/usr/bin/env sh
# Remove Python build/test litter from the working tree.
#
# Covers the caches the toolchain scatters around (__pycache__, .pyc,
# pytest/coverage state, egg-info) without touching benchmark results,
# goldens, or anything else that is checked in.
set -eu

cd "$(dirname "$0")/.."

find src tests benchmarks examples scripts -name __pycache__ -type d \
    -prune -exec rm -rf {} + 2>/dev/null || true
find src tests benchmarks examples scripts -name '*.pyc' -delete \
    2>/dev/null || true
rm -rf .pytest_cache .coverage src/*.egg-info ./*.egg-info
echo "clean: removed __pycache__/, *.pyc, .pytest_cache, coverage data"
