"""Benchmark: regenerate Figure 6 (effects of the maximum node degree)."""

from repro.experiments import figure6_degree

from _harness import assert_shapes, run_experiment


def test_figure6_degree(benchmark):
    results = run_experiment(
        benchmark,
        figure6_degree.run,
        scale="quick",
        replications=1,
        degrees=(2, 4, 6, 10),
    )
    assert_shapes(results)
