"""Benchmark: regenerate Figure 8 (Pareto / bursty arrivals)."""

from repro.experiments import figure8_pareto

from _harness import assert_shapes, run_experiment


def test_figure8_pareto(benchmark):
    results = run_experiment(
        benchmark,
        figure8_pareto.run,
        scale="quick",
        replications=1,
        rates=(1.0, 10.0, 30.0),
    )
    assert_shapes(results)
