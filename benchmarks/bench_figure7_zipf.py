"""Benchmark: regenerate Figure 7 (effects of the Zipf parameter)."""

from repro.experiments import figure7_zipf

from _harness import assert_shapes, run_experiment


def test_figure7_zipf(benchmark):
    results = run_experiment(
        benchmark,
        figure7_zipf.run,
        scale="quick",
        replications=1,
        thetas=(0.5, 1.0, 2.0, 4.0),
    )
    assert_shapes(results)
