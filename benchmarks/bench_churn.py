"""Benchmark: the churn study (Section III-C, quantified)."""

from repro.experiments import churn_study

from _harness import assert_shapes, run_experiment


def test_churn_study(benchmark):
    results = run_experiment(
        benchmark,
        churn_study.run,
        scale="quick",
        replications=1,
        levels=(0.0, 0.02, 0.08),
    )
    assert_shapes(results)
