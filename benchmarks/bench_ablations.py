"""Benchmarks: design-choice ablations (one per study)."""

from repro.experiments import ablations

from _harness import assert_shapes, run_experiment


def test_ablation_cutoff(benchmark):
    results = run_experiment(
        benchmark, ablations.run_cut_off, scale="quick", replications=1
    )
    assert_shapes(results)


def test_ablation_piggyback(benchmark):
    results = run_experiment(
        benchmark, ablations.run_piggyback, scale="quick", replications=1
    )
    assert_shapes(results)


def test_ablation_interest_policy(benchmark):
    results = run_experiment(
        benchmark,
        ablations.run_interest_policy,
        scale="quick",
        replications=1,
    )
    assert_shapes(results)


def test_ablation_invalidate(benchmark):
    results = run_experiment(
        benchmark, ablations.run_invalidate, scale="quick", replications=1
    )
    assert_shapes(results)


def test_ablation_topology(benchmark):
    results = run_experiment(
        benchmark, ablations.run_topology, scale="quick", replications=1
    )
    assert_shapes(results)


def test_ablation_extremes(benchmark):
    results = run_experiment(
        benchmark, ablations.run_extremes, scale="quick", replications=1
    )
    assert_shapes(results)
