"""Micro-benchmarks for the hot-path layers under the simulations.

Unlike the ``bench_<figure>`` files these do not regenerate a paper
artifact; they time the three building blocks every experiment leans on —
the event kernel, the transport hop, and message allocation — so kernel
regressions show up here before they blur into full-experiment noise.
Results go to ``benchmarks/results/BENCH_kernel.json`` with the same
metadata the experiment records carry.
"""

from __future__ import annotations

import json
import platform
import time

import numpy as np

from repro.engine import SimulationConfig
from repro.engine.simulation import Simulation
from repro.index.entry import IndexVersion
from repro.net.message import PushMessage, QueryMessage, ReplyMessage
from repro.sim.core import Environment
from repro.stats.distributions import Deterministic

from _harness import RESULTS_DIR, _git_sha

# Sized so each loop runs long enough (~0.1-1 s) for a stable per-op
# number while the whole file stays a few seconds end to end.
KERNEL_EVENTS = 200_000
TRANSPORT_HOPS = 100_000
MESSAGES = 100_000


def _time(fn):
    """(wall_seconds, fn_result) for one call."""
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


def _bench_kernel_events():
    """Schedule/fire KERNEL_EVENTS timeouts through a generator process."""
    env = Environment()

    def ticker():
        for _ in range(KERNEL_EVENTS):
            yield env.timeout(1.0)

    env.process(ticker(), name="ticker")
    wall, _ = _time(lambda: env.run(until=KERNEL_EVENTS + 1.0))
    assert env.now >= KERNEL_EVENTS
    return wall


def _bench_transport_hops():
    """Ping-pong TRANSPORT_HOPS pushes between two nodes."""
    config = SimulationConfig(
        scheme="pcx", num_nodes=4, duration=10.0, warmup=0.0
    )
    sim = Simulation(config)
    remaining = [TRANSPORT_HOPS]
    # Zero latency keeps every hop inside one event cascade; the handler
    # re-sends until the budget is spent.
    sim.transport._latency = Deterministic(0.0)

    def handler(destination, message):
        if remaining[0] > 0:
            remaining[0] -= 1
            sim.transport.send(3 - destination, message)

    sim.transport.bind(handler)
    version = IndexVersion(key=sim.key, version=1, issued_at=0.0, ttl=3600.0)
    push = PushMessage(key=sim.key, version=version, sender=1)

    def run():
        sim.transport.send(2, push, sender=1)
        sim.env.run(until=1.0)

    wall, _ = _time(run)
    assert remaining[0] == 0
    return wall


def _bench_message_allocation():
    """Construct MESSAGES query/reply/push messages with trace handoff."""
    rng = np.random.default_rng(1)
    version = IndexVersion(key=7, version=1, issued_at=0.0, ttl=3600.0)
    origins = rng.integers(1, 4, size=MESSAGES)

    def run():
        for i, origin in enumerate(origins):
            query = QueryMessage(key=7, origin=int(origin), issued_at=float(i))
            query.trace_id = i
            reply = ReplyMessage(
                key=7,
                version=version,
                path=query.path,
                position=0,
                request_hops=query.hops,
                issued_at=query.issued_at,
            )
            reply.inherit_trace(query)
            PushMessage(key=7, version=version, sender=int(origin))

    wall, _ = _time(run)
    return wall


def test_kernel_microbenchmarks(benchmark):
    """Time the kernel building blocks and persist BENCH_kernel.json."""

    def run_all():
        return {
            "kernel_events": {
                "ops": KERNEL_EVENTS,
                "wall_seconds": round(_bench_kernel_events(), 4),
            },
            "transport_hops": {
                "ops": TRANSPORT_HOPS,
                "wall_seconds": round(_bench_transport_hops(), 4),
            },
            "message_allocation": {
                "ops": MESSAGES,
                "wall_seconds": round(_bench_message_allocation(), 4),
            },
        }

    sections = benchmark.pedantic(run_all, rounds=1, iterations=1)
    for name, section in sections.items():
        rate = section["ops"] / max(section["wall_seconds"], 1e-9)
        print(f"\n{name}: {section['ops']} ops in "
              f"{section['wall_seconds']:.3f}s ({rate:,.0f}/s)")
        assert section["wall_seconds"] < 60.0, f"{name} implausibly slow"
    RESULTS_DIR.mkdir(exist_ok=True)
    record = {
        "experiment_id": "kernel",
        "python_version": platform.python_version(),
        "git_sha": _git_sha(),
        "sections": sections,
    }
    (RESULTS_DIR / "BENCH_kernel.json").write_text(
        json.dumps(record, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
