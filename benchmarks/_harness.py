"""Shared helpers for the benchmark harness.

Each ``bench_*`` file regenerates one paper table/figure at the "quick"
scale (trimmed population/horizon; identical sweeps and shapes).  The
rendered rows are printed and also written to ``benchmarks/results/`` so
the numbers survive pytest's output capture; the shape checks assert the
paper's qualitative claims.
"""

from __future__ import annotations

import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def run_experiment(benchmark, runner, **kwargs):
    """Run ``runner`` once under pytest-benchmark and persist its output."""
    outcome = benchmark.pedantic(
        lambda: runner(**kwargs), rounds=1, iterations=1
    )
    results = outcome if isinstance(outcome, list) else [outcome]
    RESULTS_DIR.mkdir(exist_ok=True)
    for result in results:
        text = result.render()
        print()
        print(text)
        path = RESULTS_DIR / f"{result.experiment_id}.txt"
        path.write_text(text + "\n", encoding="utf-8")
    return results


def assert_shapes(results) -> None:
    """Fail the benchmark if any paper claim did not hold."""
    failures = [
        str(check)
        for result in results
        for check in result.shape_checks
        if not check.passed
    ]
    assert not failures, "paper shape checks failed:\n" + "\n".join(failures)
