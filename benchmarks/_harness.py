"""Shared helpers for the benchmark harness.

Each ``bench_*`` file regenerates one paper table/figure at the "quick"
scale (trimmed population/horizon; identical sweeps and shapes).  The
rendered rows are printed and also written to ``benchmarks/results/`` so
the numbers survive pytest's output capture; the shape checks assert the
paper's qualitative claims.

Alongside the rendered ``<experiment>.txt``, every run also records a
``BENCH_<experiment>.json`` with the wall-clock seconds and the worker
count used (see :func:`repro.engine.parallel.resolve_workers`), so the
speedup trajectory of the parallel engine is visible across commits —
compare ``wall_seconds`` at ``workers=1`` vs ``workers=N`` on the same
machine.
"""

from __future__ import annotations

import json
import math
import pathlib
import platform
import subprocess
import time

try:
    import resource
except ImportError:  # pragma: no cover - non-POSIX platforms
    resource = None

from repro.engine.parallel import resolve_workers

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def _clean(value):
    """JSON-safe copy of a row value (NaN/inf have no JSON encoding)."""
    if isinstance(value, float) and not math.isfinite(value):
        return None
    return value


def _git_sha():
    """Short commit hash of the working tree, or None outside a checkout."""
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=pathlib.Path(__file__).parent,
            capture_output=True,
            text=True,
            check=True,
            timeout=10,
        ).stdout.strip()
    except (OSError, subprocess.SubprocessError):
        return None


def peak_rss_mb():
    """Peak resident set size of this process in MiB (None if unknown).

    ``getrusage`` reports kilobytes on Linux and bytes on macOS; both are
    normalized to MiB.  The figure is a high-water mark — for a
    benchmark it answers "did this grid point fit", which wall-clock
    alone cannot.
    """
    if resource is None:  # pragma: no cover - non-POSIX platforms
        return None
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if platform.system() == "Darwin":  # pragma: no cover - bytes on macOS
        return round(peak / (1024 * 1024), 1)
    return round(peak / 1024, 1)


def _load_history(path):
    """The ``history`` entries of a previous record at ``path``, if any."""
    try:
        previous = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return []
    history = previous.get("history", [])
    return history if isinstance(history, list) else []


def run_experiment(benchmark, runner, **kwargs):
    """Run ``runner`` once under pytest-benchmark and persist its output."""
    start = time.perf_counter()
    outcome = benchmark.pedantic(
        lambda: runner(**kwargs), rounds=1, iterations=1
    )
    wall = time.perf_counter() - start
    results = outcome if isinstance(outcome, list) else [outcome]
    workers = resolve_workers(kwargs.get("workers"))
    RESULTS_DIR.mkdir(exist_ok=True)
    for result in results:
        text = result.render()
        print()
        print(text)
        path = RESULTS_DIR / f"{result.experiment_id}.txt"
        path.write_text(text + "\n", encoding="utf-8")
        bench_path = RESULTS_DIR / f"BENCH_{result.experiment_id}.json"
        record = {
            "experiment_id": result.experiment_id,
            "wall_seconds": round(wall, 3),
            "peak_rss_mb": peak_rss_mb(),
            "workers": workers,
            "python_version": platform.python_version(),
            "git_sha": _git_sha(),
            "all_shapes_hold": result.all_shapes_hold,
            "rows": [
                {key: _clean(value) for key, value in row.items()}
                for row in result.rows
            ],
        }
        # Hand-curated baseline entries (see docs/performance.md) survive
        # re-runs so before/after comparisons stay in the file.
        history = _load_history(bench_path)
        if history:
            record["history"] = history
        bench_path.write_text(
            json.dumps(record, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
    return results


def assert_shapes(results) -> None:
    """Fail the benchmark if any paper claim did not hold."""
    failures = [
        str(check)
        for result in results
        for check in result.shape_checks
        if not check.passed
    ]
    assert not failures, "paper shape checks failed:\n" + "\n".join(failures)
