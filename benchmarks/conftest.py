"""Benchmark directory conftest (intentionally empty)."""
