"""Benchmark: regenerate Figure 5 (relative cost vs number of nodes)."""

from repro.experiments import figure5_size_cost

from _harness import assert_shapes, run_experiment


def test_figure5_size_cost(benchmark):
    results = run_experiment(
        benchmark,
        figure5_size_cost.run,
        scale="quick",
        replications=1,
        sizes=(128, 512, 2048),
    )
    assert_shapes(results)
