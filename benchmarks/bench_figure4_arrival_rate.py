"""Benchmark: regenerate Figure 4 (query arrival rate sweep)."""

from repro.experiments import figure4_arrival_rate

from _harness import assert_shapes, run_experiment


def test_figure4_arrival_rate(benchmark):
    results = run_experiment(
        benchmark,
        figure4_arrival_rate.run,
        scale="quick",
        replications=1,
        rates=(0.1, 1.0, 3.0, 10.0, 30.0),
    )
    assert_shapes(results)
