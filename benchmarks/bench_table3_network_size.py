"""Benchmark: regenerate Table III (latency vs number of nodes)."""

from repro.experiments import table3_network_size

from _harness import assert_shapes, run_experiment


def test_table3_network_size(benchmark):
    results = run_experiment(
        benchmark,
        table3_network_size.run,
        scale="quick",
        replications=1,
        sizes=(128, 512, 2048),
        rates=(0.1, 1.0, 10.0),
    )
    assert_shapes(results)
