"""Benchmark: the adaptive/balanced DUP ablation (storm sweep, all variants)."""

from repro.experiments import adaptive_study

from _harness import assert_shapes, run_experiment


def test_adaptive_study(benchmark):
    results = run_experiment(
        benchmark,
        adaptive_study.run,
        scale="quick",
        replications=1,
    )
    assert_shapes(results)
