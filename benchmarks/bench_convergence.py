"""Benchmark: DUP tree formation and post-failure recovery."""

from repro.experiments import convergence

from _harness import assert_shapes, run_experiment


def test_convergence(benchmark):
    results = run_experiment(
        benchmark, convergence.run, scale="quick", replications=1
    )
    assert_shapes(results)
