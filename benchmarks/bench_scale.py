"""Scale-tier benchmark: (nodes x keys) grid walls and the kernel A/B.

Unlike the ``bench_<figure>`` files this does not regenerate a paper
artifact; it records the capacity trajectory of the scale engine — how
long a sharded multi-key run takes and how much memory it holds at each
(nodes x keys) grid point, up to the 10^5-node, 1024-key run the tier
exists for — plus two A/B comparisons against the unbatched kernel:

- ``kernel_ab``: the grid point's delivery volume replayed through pure
  kernel dispatch (``Environment.defer`` under the batched loop vs
  ``call_later`` under the ``REPRO_FAST=0`` event machinery), with hop
  latencies quantized to scheduling epochs so same-epoch work batches —
  the regime the batched drain is built for.  This is where the >= 2x
  kernel claim is measured.
- ``end_to_end_ab``: full batched vs plain runs of a smaller grid point,
  asserted bit-identical.  End-to-end walls are scheme-handler-bound
  (protocol logic dominates once dispatch is cheap), so this ratio is
  deliberately reported separately from the kernel number.

Results go to ``benchmarks/results/BENCH_scale.json``.  Wall-clock and
peak RSS live here and only here — the scale *experiment* rows stay
machine-independent so their golden holds across hosts.  Override the
grid with ``BENCH_SCALE_GRID=2048x256,8192x512`` (CI uses a trimmed
grid).
"""

from __future__ import annotations

import json
import os
import platform
import time

import numpy as np

from repro import fastpath
from repro.engine import SimulationConfig
from repro.engine.multikey import default_shard_count, run_scale
from repro.sim.core import Environment

from _harness import RESULTS_DIR, _git_sha, peak_rss_mb

#: Default (num_nodes, num_keys) sweep; the last point is the headline
#: one-process 10^5-node, 1024-key run.
DEFAULT_GRID = ((2048, 256), (8192, 512), (32768, 1024), (100_000, 1024))

#: Grid point rerun end-to-end in plain mode for the identity check
#: (small enough that doubling its wall is cheap).
AB_POINT = (2048, 256)

#: Scheduling epoch the kernel A/B quantizes hop latencies to.
EPOCH = 0.05

#: Bounds on the kernel A/B's replayed event count (the grid point's
#: delivery volume, clamped for timing stability).
MIN_AB_EVENTS = 100_000
MAX_AB_EVENTS = 400_000


def _grid():
    spec = os.environ.get("BENCH_SCALE_GRID", "").strip()
    if not spec:
        return DEFAULT_GRID
    points = []
    for token in spec.split(","):
        nodes, _, keys = token.strip().lower().partition("x")
        points.append((int(nodes), int(keys)))
    return tuple(points)


def _config(num_nodes):
    """Trimmed-horizon scale config (full horizons live in scale_study)."""
    return SimulationConfig(
        scheme="dup",
        num_nodes=num_nodes,
        topology="chord",
        seed=1,
        duration=3600.0,
        warmup=1200.0,
        query_rate=8.0,
        keep_latency_samples=False,
    )


def _run_point(num_nodes, num_keys):
    """(wall_seconds, merged result) for one batched one-process run."""
    start = time.perf_counter()
    merged = run_scale(
        _config(num_nodes),
        num_keys=num_keys,
        key_zipf_theta=0.8,
        shard_count=default_shard_count(num_keys),
        workers=1,
    )
    return time.perf_counter() - start, merged


def _fingerprint(merged):
    """The merged numbers the batched/plain identity check compares."""
    return (
        merged.queries,
        merged.mean_latency,
        merged.hit_rate,
        merged.cost_per_query,
        merged.extras["latency_p95"],
        merged.extras["swept_entries"],
        merged.extras["parents_touched"],
    )


def _kernel_ab(events):
    """(batched_wall, plain_wall) dispatching ``events`` deliveries.

    The same epoch-quantized delay list runs through both kernels:
    batched mode schedules flat ``defer`` records and drains same-tick
    batches; plain mode (``REPRO_FAST=0`` equivalent) pays the full
    Timeout/callback machinery per event.  Best-of-three per side.
    """
    rng = np.random.default_rng(1)
    delays = (np.round(rng.exponential(0.1, size=events) / EPOCH) * EPOCH).tolist()

    def one(fast, batched):
        fastpath.set_enabled(fast)
        fastpath.set_batched(batched)
        env = Environment()
        fired = [0]

        def tick():
            fired[0] += 1

        schedule = env.defer if fast else env.call_later
        start = time.perf_counter()
        for delay in delays:
            schedule(delay, tick)
        env.run()
        wall = time.perf_counter() - start
        assert fired[0] == events
        return wall

    try:
        one(True, True)  # warm allocator and bytecode caches
        batched = min(one(True, True) for _ in range(3))
        plain = min(one(False, False) for _ in range(3))
    finally:
        fastpath.set_enabled(True)
        fastpath.set_batched(True)
    return batched, plain


def test_scale_benchmark(benchmark):
    """Sweep the grid, run both A/Bs, persist BENCH_scale.json."""
    grid = _grid()

    def run_all():
        fastpath.set_enabled(True)
        fastpath.set_batched(True)
        rows = []
        last = None
        for num_nodes, num_keys in grid:
            wall, merged = _run_point(num_nodes, num_keys)
            last = merged
            rows.append(
                {
                    "nodes": num_nodes,
                    "keys": num_keys,
                    "shards": default_shard_count(num_keys),
                    "wall_seconds": round(wall, 3),
                    "peak_rss_mb": peak_rss_mb(),
                    "queries": merged.queries,
                    "hit_rate": round(merged.hit_rate, 4),
                    "cost_per_query": round(merged.cost_per_query, 3),
                    "parents_touched": int(merged.extras["parents_touched"]),
                }
            )
        # Kernel A/B sized from the last (largest) grid point's actual
        # delivery volume.
        volume = int(round(last.queries * last.cost_per_query))
        events = max(MIN_AB_EVENTS, min(MAX_AB_EVENTS, volume))
        batched_wall, plain_wall = _kernel_ab(events)
        kernel_ab = {
            "nodes": grid[-1][0],
            "keys": grid[-1][1],
            "events": events,
            "epoch_seconds": EPOCH,
            "batched_wall_seconds": round(batched_wall, 4),
            "unbatched_wall_seconds": round(plain_wall, 4),
            "speedup": round(plain_wall / batched_wall, 2),
        }
        # End-to-end identity + walls on the A/B point.
        ab_nodes, ab_keys = AB_POINT
        fastpath.set_enabled(True)
        fastpath.set_batched(True)
        wall_batched, merged_batched = _run_point(ab_nodes, ab_keys)
        fastpath.set_enabled(False)
        fastpath.set_batched(False)
        try:
            wall_plain, merged_plain = _run_point(ab_nodes, ab_keys)
        finally:
            fastpath.set_enabled(True)
            fastpath.set_batched(True)
        assert _fingerprint(merged_batched) == _fingerprint(merged_plain), (
            "batched and plain kernels disagree on merged scale metrics"
        )
        end_to_end_ab = {
            "nodes": ab_nodes,
            "keys": ab_keys,
            "batched_wall_seconds": round(wall_batched, 3),
            "plain_wall_seconds": round(wall_plain, 3),
            "speedup": round(wall_plain / wall_batched, 2),
            "bit_identical": True,
        }
        return rows, kernel_ab, end_to_end_ab

    rows, kernel_ab, end_to_end_ab = benchmark.pedantic(
        run_all, rounds=1, iterations=1
    )
    for row in rows:
        print(
            f"\n{row['nodes']}x{row['keys']}: {row['wall_seconds']}s, "
            f"{row['peak_rss_mb']} MiB peak, {row['queries']} queries"
        )
    print(
        f"\nkernel A/B ({kernel_ab['events']} events): "
        f"batched {kernel_ab['batched_wall_seconds']}s vs unbatched "
        f"{kernel_ab['unbatched_wall_seconds']}s "
        f"({kernel_ab['speedup']}x)"
    )
    # The dispatch layer must stay well ahead of the unbatched path; the
    # floor sits below the >= 2x it measures unloaded so runner noise
    # cannot flake the build.
    assert kernel_ab["speedup"] >= 1.5, kernel_ab
    RESULTS_DIR.mkdir(exist_ok=True)
    record = {
        "experiment_id": "scale",
        "python_version": platform.python_version(),
        "git_sha": _git_sha(),
        "grid": rows,
        "kernel_ab": kernel_ab,
        "end_to_end_ab": end_to_end_ab,
        "notes": (
            "kernel_ab replays the largest grid point's delivery volume "
            "through pure kernel dispatch (batched defer records vs the "
            "REPRO_FAST=0 Timeout machinery) with epoch-quantized hop "
            "latencies; end_to_end_ab reruns a full grid point both ways "
            "and is scheme-handler-bound by design."
        ),
    }
    (RESULTS_DIR / "BENCH_scale.json").write_text(
        json.dumps(record, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
