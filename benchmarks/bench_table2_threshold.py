"""Benchmark: regenerate Table II (effects of the threshold value c)."""

from repro.experiments import table2_threshold

from _harness import assert_shapes, run_experiment


def test_table2_threshold(benchmark):
    results = run_experiment(
        benchmark,
        table2_threshold.run,
        scale="quick",
        replications=1,
        c_values=(2, 6, 10),
        rates=(0.1, 1.0, 10.0),
    )
    assert_shapes(results)
