"""Benchmark: the partition study (splits + in-partition failover)."""

from repro.experiments import partition_study

from _harness import assert_shapes, run_experiment


def test_partition_study(benchmark):
    results = run_experiment(
        benchmark,
        partition_study.run,
        scale="quick",
        replications=1,
        durations=(60.0, 300.0, 900.0),
    )
    assert_shapes(results)
