"""Benchmark: the overload study (storm-intensity sweep, all variants)."""

from repro.experiments import overload_study

from _harness import assert_shapes, run_experiment


def test_overload_study(benchmark):
    results = run_experiment(
        benchmark,
        overload_study.run,
        scale="quick",
        replications=1,
    )
    assert_shapes(results)
