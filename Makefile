# Convenience targets for the DUP reproduction.
#
# The test/bench targets mirror what CI runs (.github/workflows/ci.yml);
# PYTHONPATH=src keeps everything import-from-source with no install step.

PYTHON ?= python
PY = PYTHONPATH=src $(PYTHON)

.PHONY: test bench bench-scale perf-smoke profile clean

test:
	$(PY) -m pytest -q

bench:
	$(PY) -m pytest -q benchmarks/

# Full (nodes x keys) capacity sweep up to the 10^5-node point plus the
# batched-vs-unbatched kernel A/B; writes benchmarks/results/BENCH_scale.json.
# Trim with e.g. BENCH_SCALE_GRID=2048x256,8192x512.
bench-scale:
	$(PY) -m pytest -q benchmarks/bench_scale.py

perf-smoke:
	$(PY) scripts/perf_smoke.py

profile:
	$(PY) -m repro.cli profile figure4 --top 20

clean:
	sh scripts/clean.sh
