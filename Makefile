# Convenience targets for the DUP reproduction.
#
# The test/bench targets mirror what CI runs (.github/workflows/ci.yml);
# PYTHONPATH=src keeps everything import-from-source with no install step.

PYTHON ?= python
PY = PYTHONPATH=src $(PYTHON)

.PHONY: test bench perf-smoke profile clean

test:
	$(PY) -m pytest -q

bench:
	$(PY) -m pytest -q benchmarks/

perf-smoke:
	$(PY) scripts/perf_smoke.py

profile:
	$(PY) -m repro.cli profile figure4 --top 20

clean:
	sh scripts/clean.sh
