#!/usr/bin/env python
"""Capacity planning with the analytical models, validated by simulation.

Before deploying DUP you want to know, for a given workload, (a) how many
nodes will subscribe (and hence how big the propagation tree gets) and
(b) what one update dissemination will cost compared to CUP and to PCX's
re-fetch traffic.  `repro.analysis` answers both in closed form; this
example computes the predictions and then runs the simulator to check
them.

Run:
    python examples/capacity_planning.py
"""

import numpy as np

from repro.analysis import (
    cup_push_cost,
    dup_push_cost,
    expected_interested,
    pcx_refetch_cost,
)
from repro.engine import Simulation, SimulationConfig
from repro.topology import random_search_tree


def predict(config: SimulationConfig) -> float:
    """Expected interested-node count for the configured workload."""
    return expected_interested(
        n=config.num_nodes - 1,  # the authority does not query
        theta=config.zipf_theta,
        rate=config.query_rate,
        ttl=config.ttl,
        threshold_c=config.threshold_c,
    )


def main() -> None:
    config = SimulationConfig(
        scheme="dup",
        num_nodes=1024,
        query_rate=6.0,
        duration=3600.0 * 6,
        warmup=3600.0 * 2,
        seed=33,
    )

    print("== analytical prediction ==")
    predicted = predict(config)
    print(
        f"  workload: n={config.num_nodes}, lambda={config.query_rate}, "
        f"theta={config.zipf_theta}, c={config.threshold_c}"
    )
    print(f"  predicted interested nodes: {predicted:.0f}")

    # Per-update dissemination costs on a representative subscriber set:
    # take the predicted count of hottest ranks on a sample tree.
    tree = random_search_tree(
        config.num_nodes, config.max_degree, np.random.default_rng(33)
    )
    rng = np.random.default_rng(34)
    sample = rng.choice(
        [n for n in tree.nodes if n != tree.root],
        size=int(predicted),
        replace=False,
    )
    subscribers = [int(node) for node in sample]
    dup_hops = dup_push_cost(tree, subscribers)
    cup_hops = cup_push_cost(tree, subscribers)
    pcx_hops = pcx_refetch_cost(tree, subscribers)
    print(
        f"  per-cycle dissemination to {len(subscribers)} subscribers: "
        f"DUP={dup_hops} hops, CUP={cup_hops} hops, "
        f"PCX re-fetch={pcx_hops} hops"
    )
    print(
        f"  predicted push savings vs PCX: DUP {1 - dup_hops / pcx_hops:.0%}, "
        f"CUP {1 - cup_hops / pcx_hops:.0%}"
    )

    print("\n== simulation check ==")
    sim = Simulation(config)
    series = sim.add_probe(
        "subscribed",
        lambda: float(len(sim.scheme.subscribed_nodes())),
        interval=1800.0,
    )
    result = sim.run()
    steady = series.window(config.warmup, config.duration).mean()
    print(f"  simulated steady subscribers: {steady:.0f}")
    print(
        f"  prediction error: "
        f"{abs(steady - predicted) / max(steady, 1):.0%} "
        "(the model ignores forwarded-query arrivals and threshold "
        "flapping)"
    )
    push_hops = result.hop_breakdown["push"]
    measured_hours = (config.duration - config.warmup) / 3600.0
    cycles = (config.duration - config.warmup) / (
        config.ttl - config.push_lead
    )
    print(
        f"  simulated push hops/cycle: {push_hops / cycles:.0f} "
        f"(analytic DUP estimate: {dup_hops}) over "
        f"{measured_hours:.0f} measured hours"
    )


if __name__ == "__main__":
    main()
