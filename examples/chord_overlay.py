#!/usr/bin/env python
"""DUP on a real DHT: Chord-derived index search trees.

The paper's simulations use a synthetic random tree, but its system model
is a structured overlay like Chord, where "queries for indices are routed
along a well-defined path" and those paths form the index search tree.
This example builds an actual Chord ring (finger tables and all), derives
the search tree for a key from the union of every node's lookup route,
inspects its shape, and runs the three schemes on it.

Run:
    python examples/chord_overlay.py
"""

import numpy as np

from repro import SimulationConfig, compare_schemes
from repro.topology import ChordRing, chord_search_tree


def inspect_ring() -> None:
    print("== the Chord substrate ==")
    rng = np.random.default_rng(2026)
    ring = ChordRing.random(256, rng, bits=32)
    key = int(rng.integers(0, 1 << 32))
    owner = ring.successor(key)
    print(f"  ring: {len(ring)} nodes on a 32-bit identifier circle")
    print(f"  key {key:#x} is owned by node {owner:#x}")

    sample = list(ring)[10]
    path = ring.lookup_path(sample, key)
    print(
        f"  lookup from node {sample:#x}: {len(path) - 1} hops "
        f"(O(log n) = ~{int(np.log2(len(ring)))})"
    )

    tree = chord_search_tree(ring, key)
    depths = [tree.depth(node) for node in tree.nodes]
    print(
        f"  derived search tree: {len(tree)} nodes, height {tree.height()}, "
        f"mean depth {np.mean(depths):.2f}"
    )
    degrees = sorted((tree.degree(n) for n in tree.nodes), reverse=True)
    print(
        f"  fan-out is skewed (unlike the paper's uniform [1, D]): "
        f"top degrees {degrees[:5]}, median {degrees[len(degrees) // 2]}\n"
    )


def run_schemes_on_chord() -> None:
    print("== PCX / CUP / DUP on the Chord-derived tree ==")
    config = SimulationConfig(
        topology="chord",
        num_nodes=512,
        query_rate=10.0,
        duration=3600.0 * 5,
        warmup=3600.0 * 2,
        seed=5,
    )
    comparison = compare_schemes(config, ("pcx", "cup", "dup"), replications=2)
    for scheme in ("pcx", "cup", "dup"):
        print(
            f"  {scheme:4s} latency={comparison.latency(scheme).mean:.4f} "
            f"relative cost={comparison.relative_cost[scheme].mean:.3f}"
        )
    print(
        "\n  The ordering matches the random-tree results: DUP's "
        "advantage is a property of the protocol, not of the paper's "
        "synthetic topology generator (see the 'ablation-topology' "
        "benchmark for the controlled comparison)."
    )


def main() -> None:
    inspect_ring()
    run_schemes_on_chord()


if __name__ == "__main__":
    main()
