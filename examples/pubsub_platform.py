#!/usr/bin/env python
"""The paper's future work, realized: DUP as a pub/sub dissemination platform.

"The idea of DUP may be applied to more general data dissemination
scenarios.  We plan to extend DUP to a general data dissemination
platform in overlay networks."  — paper, Section VI.

This example builds a 256-node Chord overlay carrying three topics, lets
node groups subscribe, publishes events, and compares DUP's per-event
fan-out cost against what a SCRIBE-style hop-by-hop multicast would pay on
the same trees (the comparison the paper's related-work section makes).

Run:
    python examples/pubsub_platform.py
"""

from collections import Counter

import numpy as np

from repro.dissemination import DisseminationPlatform
from repro.sim import Environment


def main() -> None:
    env = Environment()
    platform = DisseminationPlatform(env, num_nodes=256, seed=11)
    rng = np.random.default_rng(11)

    topics = {
        "prices/btc": 40,   # broad interest
        "alerts/security": 8,   # small, scattered group
        "feeds/research": 16,
    }
    deliveries = []
    for node in platform.nodes:
        platform.on_delivery(node, deliveries.append)

    print("== building topics and subscriber groups ==")
    for name, group_size in topics.items():
        handle = platform.create_topic(name)
        members = rng.choice(platform.nodes, size=group_size, replace=False)
        for member in members:
            platform.subscribe(int(member), name)
        dup_cost, scribe_cost = platform.multicast_cost_bound(name)
        print(
            f"  {name:<18s} authority={handle.authority:#011x} "
            f"subscribers={group_size:<3d} per-event hops: "
            f"DUP={dup_cost:<3d} SCRIBE-style={scribe_cost:<3d} "
            f"(saving {1 - dup_cost / max(scribe_cost, 1):.0%})"
        )

    print("\n== publishing ==")
    publishers = rng.choice(platform.nodes, size=6, replace=False)
    for index, publisher in enumerate(publishers):
        topic = list(topics)[index % len(topics)]
        platform.publish(int(publisher), topic, f"event-{index}")
    env.run()

    per_topic = Counter(d.topic for d in deliveries)
    delays = [d.delay for d in deliveries]
    print(f"  deliveries: {dict(per_topic)}")
    print(
        f"  end-to-end delay: mean={np.mean(delays):.3f}s "
        f"max={np.max(delays):.3f}s (per-hop latency ~Exp(0.1s))"
    )
    print(
        f"  traffic: publish={platform.stats.publish_hops} hops, "
        f"push={platform.stats.push_hops} hops, "
        f"control(subscriptions)={platform.stats.control_hops} hops"
    )

    print("\n== churn in interest: the security group doubles ==")
    extra = rng.choice(platform.nodes, size=8, replace=False)
    for member in extra:
        platform.subscribe(int(member), "alerts/security")
    dup_cost, scribe_cost = platform.multicast_cost_bound("alerts/security")
    print(
        f"  alerts/security now pays DUP={dup_cost} vs "
        f"SCRIBE-style={scribe_cost} hops per event"
    )
    print(
        "  subscription state is hard DUP state: the tree grew by "
        "substitute promotions, no re-broadcasts needed."
    )


if __name__ == "__main__":
    main()
