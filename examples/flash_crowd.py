#!/usr/bin/env python
"""Flash crowd: a cold node suddenly becomes the hottest spot.

The paper motivates DUP with peer-to-peer content lookup, where interest
in an index can appear abruptly (a file goes viral).  This example drives
the scenario at the protocol level: a single node starts issuing queries
at a high rate mid-simulation, and we watch DUP react —

1. before the flash crowd, the node is not subscribed and its queries
   miss once per TTL like any PCX node;
2. after a handful of queries it crosses the interest threshold and its
   next miss carries a piggybacked subscription;
3. from then on the authority pushes every refresh directly to it (one
   overlay hop) and its latency pins to zero;
4. when the crowd dissipates, the next push detects the lapsed interest
   and the node unsubscribes, shrinking the DUP tree again.

Run:
    python examples/flash_crowd.py
"""

from repro.engine import Simulation, SimulationConfig
from repro.net.message import Category


def drive_queries(sim, node, at_times):
    """Schedule one local query at each absolute time."""
    for when in at_times:
        sim.env.call_later(
            when - sim.env.now, sim.scheme.on_local_query, node
        )


def snapshot(sim, node, label):
    subscribed = sim.scheme.protocol.is_subscribed(node)
    pushes = sim.ledger.hops(Category.PUSH) + sim.ledger.warmup_hops(
        Category.PUSH
    )
    recent = sim.latency.samples[-1] if sim.latency.samples else float("nan")
    print(
        f"t={sim.env.now:>8.0f}s  {label:<34s} subscribed={subscribed!s:<5s} "
        f"push_hops={pushes:<4d} last_latency={recent:g}"
    )


def main() -> None:
    config = SimulationConfig(
        scheme="dup",
        num_nodes=512,
        topology="random-tree",
        query_rate=0.001,  # background noise only; we drive the hot node
        threshold_c=6,
        duration=3600.0 * 12,
        warmup=0.0,
        seed=42,
    )
    sim = Simulation(config)
    sim.start()
    hot_node = max(sim.tree.nodes)  # a deep, ordinary node
    depth = sim.tree.depth(hot_node)
    print(
        f"hot node: {hot_node} at depth {depth} "
        f"(a PCX miss costs {2 * depth} hops round trip)\n"
    )

    # Phase 1: pre-crowd. One lonely query per TTL.
    sim.env.run(until=100.0)
    sim.scheme.on_local_query(hot_node)
    sim.env.run(until=120.0)
    snapshot(sim, hot_node, "pre-crowd: lonely query (miss)")

    # Phase 2: the flash crowd - 20 queries over 10 minutes.
    crowd_start = 4000.0
    drive_queries(
        sim, hot_node, [crowd_start + 30.0 * i for i in range(20)]
    )
    sim.env.run(until=crowd_start + 700.0)
    snapshot(sim, hot_node, "crowd arrived: threshold crossed")

    # Phase 3: steady crowd across several refresh cycles - pushes keep
    # the node warm, queries never miss.
    for cycle in range(2, 6):
        when = 3540.0 * cycle + 200.0
        drive_queries(sim, hot_node, [when + 60.0 * i for i in range(8)])
        sim.env.run(until=when + 600.0)
        snapshot(sim, hot_node, f"cycle {cycle}: pushed, querying warm")

    # Phase 4: the crowd dissipates; after a silent TTL the next push
    # triggers the unsubscribe walk.
    sim.env.run(until=sim.env.now + 3 * 3600.0)
    snapshot(sim, hot_node, "crowd gone: unsubscribed at push time")

    misses = [s for s in sim.latency.samples if s > 0]
    print(
        f"\ntotal queries: {sim.latency.count}, misses: {len(misses)}, "
        f"hit rate: {sim.latency.hit_rate:.3f}"
    )
    print(
        "during the crowd the node was served entirely from pushed "
        "copies - the only misses are the initial fetch and the "
        "subscription-carrying one."
    )


if __name__ == "__main__":
    main()
