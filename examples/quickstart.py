#!/usr/bin/env python
"""Quickstart: compare PCX, CUP, and DUP on one workload.

Builds the paper's default-style setup at laptop scale, runs the three
schemes on identical workloads (common random numbers), and prints the
two headline metrics — average query latency (hops) and average query
cost (hops/query) — plus the cost relative to the PCX baseline.

Run:
    python examples/quickstart.py
"""

from repro import SimulationConfig, compare_schemes


def main() -> None:
    config = SimulationConfig(
        num_nodes=1024,        # paper default is 4096; trimmed for speed
        max_degree=4,          # paper's D
        query_rate=10.0,       # lambda: queries/second network-wide
        zipf_theta=0.95,       # query placement skew
        threshold_c=6,         # the interest threshold (Table II's pick)
        ttl=3600.0,            # 60-minute index TTL
        duration=3600.0 * 6,   # six simulated hours
        warmup=3600.0 * 2,     # metrics start after two hours
        seed=7,
    )
    print(f"workload: {config.describe()}")
    print("running pcx, cup, dup on identical workloads...\n")

    comparison = compare_schemes(config, ("pcx", "cup", "dup"), replications=2)

    header = f"{'scheme':8s} {'latency (hops)':>20s} {'cost (hops/q)':>16s} {'vs PCX':>8s}"
    print(header)
    print("-" * len(header))
    for scheme in ("pcx", "cup", "dup"):
        latency = comparison.latency(scheme)
        cost = comparison.cost(scheme)
        relative = comparison.relative_cost[scheme]
        print(
            f"{scheme:8s} {str(latency):>20s} {cost.mean:>16.4f} "
            f"{relative.mean:>8.3f}"
        )

    dup_vs_cup = (
        comparison.latency("cup").mean
        / max(comparison.latency("dup").mean, 1e-9)
    )
    print(
        f"\nDUP's latency is {dup_vs_cup:.0f}x lower than CUP's here — "
        "the paper's headline result: subscriptions are hard state, so "
        "interested nodes never fall off the push tree, and pushes take "
        "one-hop short-cuts instead of walking the search tree."
    )


if __name__ == "__main__":
    main()
