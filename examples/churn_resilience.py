#!/usr/bin/env python
"""Churn resilience: DUP's Section III-C repair machinery under fire.

Runs DUP and PCX side by side while nodes continuously join (half onto
existing search paths), leave gracefully, and crash — then exercises the
hardest case by hand: the authority node itself failing and a replacement
taking over (failure case 5), driven through the keep-alive tracker.

Run:
    python examples/churn_resilience.py
"""

from repro.engine import SimulationConfig, run_simulation
from repro.engine.simulation import Simulation
from repro.index import KeepAliveTracker
from repro.workload import ChurnConfig


def churn_comparison() -> None:
    print("== continuous churn: joins, departures, failures ==")
    churn = ChurnConfig(
        join_rate=0.01,  # ~1 join / 100 s
        leave_rate=0.006,
        fail_rate=0.006,
        edge_join_fraction=0.5,
    )
    base = SimulationConfig(
        num_nodes=512,
        query_rate=5.0,
        duration=3600.0 * 6,
        warmup=3600.0 * 2,
        churn=churn,
        seed=3,
    )
    for scheme in ("pcx", "dup"):
        result = run_simulation(base.replace(scheme=scheme))
        print(
            f"  {scheme:4s} latency={result.mean_latency:.4f} "
            f"cost={result.cost_per_query:.4f} "
            f"dropped={result.dropped_messages} "
            f"incomplete={result.incomplete_queries} "
            f"population {base.num_nodes} -> {result.final_population}"
        )
    print(
        "  DUP keeps its latency advantage: repairs are local "
        "(inheritance on join, handover on leave, refresh-subscribes on "
        "failure) and cost only a handful of control hops each.\n"
    )


def root_failure_drill() -> None:
    print("== authority failure drill (paper failure case 5) ==")
    config = SimulationConfig(
        scheme="dup",
        num_nodes=256,
        query_rate=8.0,
        duration=3600.0 * 8,
        warmup=0.0,
        seed=9,
    )
    sim = Simulation(config)
    sim.start()

    # The data-hosting node beacons to the authority; when beacons stop,
    # the authority force-updates the index (system model, Section II-A).
    host = 77
    tracker = KeepAliveTracker(
        sim.env,
        timeout=600.0,
        check_interval=60.0,
        on_host_dead=lambda dead: sim.authority.force_update(
            value=f"failover-host-for-{dead}"
        ),
    )

    def beacons(env):
        # Beacon every 200 s for two hours, then the host dies silently.
        while env.now < 7200.0:
            tracker.beacon(host)
            yield env.timeout(200.0)

    sim.env.process(beacons(sim.env), name="host-beacons")

    # Let the system warm up and accumulate subscribers.
    sim.env.process(steady_queries(sim), name="steady-queries")
    sim.env.run(until=7000.0)
    before = len(sim.scheme.subscribed_nodes())
    version_before = sim.authority.current.version
    print(f"  t=7000s: {before} subscribers, index version {version_before}")

    # The hosting node dies; the keep-alive timeout forces a re-issue.
    sim.env.run(until=8500.0)
    version_after = sim.authority.current.version
    print(
        f"  t=8500s: host declared dead -> forced re-issue "
        f"(version {version_before} -> {version_after}), value="
        f"{sim.authority.current.value!r}"
    )

    # Now the ROOT itself fails: a fresh node takes over the key space
    # and the direct children re-register their advertisements.
    new_root = sim.allocate_node_id()
    sim.scheme.on_root_failed(new_root)
    sim.authority.force_update(value="root-replacement")
    sim.env.run(until=12_000.0)
    after = len(sim.scheme.subscribed_nodes())
    print(
        f"  t=12000s: root replaced by node {new_root}; "
        f"{after} subscribers still receiving pushes"
    )
    print(
        f"  survivors' last-100-query hit rate: "
        f"{sum(1 for s in sim.latency.samples[-100:] if s == 0) / 100:.2f}"
    )


def steady_queries(sim):
    """A steady trickle of queries from the hottest nodes."""
    import itertools

    hot = sim.selector.hottest(24)
    for node in itertools.cycle(hot):
        yield sim.env.timeout(9.0)
        if sim.alive(node):
            sim.scheme.on_local_query(node)


def main() -> None:
    churn_comparison()
    root_failure_drill()


if __name__ == "__main__":
    main()
