#!/usr/bin/env python
"""Many indices at once: DUP across a shared Chord overlay.

The paper isolates a single index at a single authority; a deployed
system serves thousands of keys concurrently, each hashing to its own
authority and forming its own search tree over the same node population.
This example runs 12 keys with skewed popularity over one 256-node Chord
ring, for PCX and DUP, and shows that DUP's behavior composes: every
node participates in several propagation trees simultaneously (as
subscriber in some, relay in others) and the aggregate latency/cost
advantage is preserved.

Run:
    python examples/multi_key.py
"""

from repro import MultiKeySimulation, SimulationConfig


def main() -> None:
    base = SimulationConfig(
        topology="chord",
        num_nodes=256,
        query_rate=16.0,  # across all keys
        duration=3600.0 * 5,
        warmup=3600.0 * 2,
        seed=21,
    )
    results = {}
    for scheme in ("pcx", "dup"):
        sim = MultiKeySimulation(
            base.replace(scheme=scheme), num_keys=12, key_zipf_theta=0.8
        )
        results[scheme] = sim.run()

    print("== aggregate over 12 keys, 256 nodes ==")
    for scheme, result in results.items():
        print(
            f"  {scheme:4s} latency={result.mean_latency:.4f} "
            f"cost={result.cost_per_query:.4f} hit={result.hit_rate:.3f}"
        )
    ratio = results["dup"].cost_per_query / results["pcx"].cost_per_query
    print(f"  DUP aggregate relative cost: {ratio:.3f}")

    dup = results["dup"]
    per_key = dup.extras["queries_per_key"]
    counts = list(per_key.values())
    print("\n== per-key workload skew (Zipf over keys) ==")
    print(f"  hottest key: {counts[0]} queries; coldest: {counts[-1]}")
    print(f"  total DUP subscriptions across keys: "
          f"{dup.extras['total_subscriptions']}")
    print(
        "\n  Every node holds one cache with entries for several keys and "
        "plays different DUP roles per key — the propagation trees are "
        "independent state machines sharing the overlay and transport."
    )


if __name__ == "__main__":
    main()
